#include "queueing/mva.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rac::queueing {
namespace {

// Closed single-queue + think-time model with known exact solutions (the
// "machine repairman" / interactive system model).

TEST(Mva, SingleCustomerNoQueueing) {
  ClosedNetwork net(10.0);
  net.add_station(make_queueing_station("s", 2.0));  // service time 0.5
  const auto r = net.solve(1);
  EXPECT_NEAR(r.response_time, 0.5, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0 / 10.5, 1e-12);
  EXPECT_NEAR(r.little_check(), 1.0, 1e-9);
}

TEST(Mva, TwoCustomersExactSolution) {
  // N=2, Z=0, single exponential server, mean service 1: R(2) = 2, X = 1.
  ClosedNetwork net(0.0);
  net.add_station(make_queueing_station("s", 1.0));
  const auto r = net.solve(2);
  EXPECT_NEAR(r.response_time, 2.0, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0, 1e-12);
}

TEST(Mva, LittlesLawHoldsForAllPopulations) {
  ClosedNetwork net(5.0);
  net.add_station(make_queueing_station("a", 10.0));
  net.add_station(make_multiserver_station("b", 4, 3.0, 300));
  for (int n : {1, 5, 20, 100, 300}) {
    const auto r = net.solve(n);
    EXPECT_NEAR(r.little_check(), static_cast<double>(n), 1e-6) << n;
  }
}

TEST(Mva, ThroughputBoundedByBottleneck) {
  ClosedNetwork net(1.0);
  net.add_station(make_queueing_station("bottleneck", 4.0));
  for (int n : {1, 10, 50, 200}) {
    EXPECT_LE(net.solve(n).throughput, 4.0 + 1e-9);
  }
  // And it approaches the bound under heavy population.
  EXPECT_GT(net.solve(200).throughput, 3.99);
}

TEST(Mva, ThroughputMonotoneInPopulation) {
  ClosedNetwork net(2.0);
  net.add_station(make_multiserver_station("s", 2, 1.5, 200));
  double prev = 0.0;
  for (int n = 1; n <= 200; n += 10) {
    const double x = net.solve(n).throughput;
    EXPECT_GE(x, prev - 1e-9);
    prev = x;
  }
}

TEST(Mva, ResponseTimeMonotoneInPopulation) {
  ClosedNetwork net(2.0);
  net.add_station(make_queueing_station("s", 5.0));
  double prev = 0.0;
  for (int n = 1; n <= 100; n += 5) {
    const double r = net.solve(n).response_time;
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
}

TEST(Mva, MultiserverBeatsSingleFatServerAtLowLoadEqualCapacity) {
  // c servers of rate mu vs one server of rate c*mu: same capacity, but
  // the fat server is strictly faster per job, so R_fat <= R_multi; the
  // multiserver still beats a SINGLE slow server of rate mu.
  ClosedNetwork multi(1.0);
  multi.add_station(make_multiserver_station("m", 4, 1.0, 100));
  ClosedNetwork slow(1.0);
  slow.add_station(make_queueing_station("s", 1.0));
  ClosedNetwork fat(1.0);
  fat.add_station(make_queueing_station("f", 4.0));
  const int n = 20;
  EXPECT_LT(multi.solve(n).response_time, slow.solve(n).response_time);
  EXPECT_LE(fat.solve(n).response_time,
            multi.solve(n).response_time + 1e-9);
}

TEST(Mva, UtilizationApproachesOneUnderSaturation) {
  ClosedNetwork net(0.5);
  net.add_station(make_queueing_station("s", 2.0));
  const auto r = net.solve(100);
  ASSERT_EQ(r.stations.size(), 1u);
  EXPECT_GT(r.stations[0].utilization, 0.999);
}

TEST(Mva, VisitRatioScalesResidence) {
  ClosedNetwork once(10.0);
  once.add_station(make_queueing_station("s", 100.0, 1.0));
  ClosedNetwork twice(10.0);
  twice.add_station(make_queueing_station("s", 100.0, 2.0));
  // At negligible load, residence time doubles with the visit ratio.
  EXPECT_NEAR(twice.solve(1).response_time,
              2.0 * once.solve(1).response_time, 1e-9);
}

TEST(Mva, ZeroPopulationIsEmptyResult) {
  ClosedNetwork net(1.0);
  net.add_station(make_queueing_station("s", 1.0));
  const auto r = net.solve(0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.response_time, 0.0);
}

TEST(Mva, ThroughputCurveMatchesPerPopulationSolves) {
  ClosedNetwork net(0.0);
  net.add_station(make_multiserver_station("a", 3, 2.0, 50));
  net.add_station(make_queueing_station("b", 5.0));
  const auto curve = net.throughput_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (int n : {1, 7, 25, 50}) {
    EXPECT_NEAR(curve[static_cast<std::size_t>(n - 1)],
                net.solve(n).throughput, 1e-9)
        << n;
  }
}

TEST(Mva, ThroughputCurveIsMonotoneForPsNetworks) {
  ClosedNetwork net(0.0);
  net.add_station(make_multiserver_station("a", 2, 1.0, 100));
  net.add_station(make_multiserver_station("b", 4, 1.5, 100));
  const auto curve = net.throughput_curve(100);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
}

TEST(Mva, FlowEquivalentAggregationIsExact) {
  // Solving delay + subnetwork directly must equal delay + FESC station
  // built from the subnetwork's throughput curve (exactness of
  // flow-equivalent aggregation in product-form networks).
  const int n = 60;
  ClosedNetwork direct(3.0);
  direct.add_station(make_queueing_station("a", 4.0));
  direct.add_station(make_multiserver_station("b", 2, 3.0, n));

  ClosedNetwork sub(0.0);
  sub.add_station(make_queueing_station("a", 4.0));
  sub.add_station(make_multiserver_station("b", 2, 3.0, n));
  Station fesc;
  fesc.name = "agg";
  fesc.rates = sub.throughput_curve(n);
  ClosedNetwork outer(3.0);
  outer.add_station(std::move(fesc));

  for (int pop : {1, 10, 30, 60}) {
    EXPECT_NEAR(outer.solve(pop).throughput, direct.solve(pop).throughput,
                1e-6)
        << pop;
  }
}

TEST(Mva, RejectsInvalidInputs) {
  EXPECT_THROW(ClosedNetwork(-1.0), std::invalid_argument);
  ClosedNetwork net(0.0);
  EXPECT_THROW(net.solve(1), std::invalid_argument);  // empty, zero think
  EXPECT_THROW(net.add_station(Station{"x", 1.0, {}}), std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"x", 1.0, {0.0}}),
               std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"x", -1.0, {1.0}}),
               std::invalid_argument);
  net.add_station(make_queueing_station("ok", 1.0));
  EXPECT_THROW(net.solve(-1), std::invalid_argument);
  EXPECT_THROW(make_queueing_station("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(make_multiserver_station("bad", 0, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW(net.throughput_curve(0), std::invalid_argument);
}

// Regression for the contract migration: a station with a negative service
// demand (negative rate or visit ratio) must be rejected at add time --
// letting it through poisons the recursion with negative queue lengths,
// which the RAC_AUDIT checks in solve() would only catch in audit builds.
TEST(Mva, RejectsNegativeDemand) {
  ClosedNetwork net(1.0);
  EXPECT_THROW(net.add_station(Station{"neg-rate", 1.0, {-2.0}}),
               std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"neg-visit", -0.5, {2.0}}),
               std::invalid_argument);
  EXPECT_THROW(make_queueing_station("neg", -1.0), std::invalid_argument);
}

// In audit builds this solve additionally runs the finiteness /
// non-negativity / monotone-throughput RAC_AUDIT checks; in default builds
// it is a plain solve. Either way the numbers must be sane.
TEST(Mva, SolveInvariantsHoldOnHealthyNetwork) {
  ClosedNetwork net(2.0);
  net.add_station(make_multiserver_station("web", 4, 20.0, 64));
  net.add_station(make_queueing_station("db", 35.0, 0.8));
  const auto curve = net.throughput_curve(64);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i] + 1e-9, curve[i - 1]) << i;
  }
  const auto result = net.solve(64);
  EXPECT_GT(result.throughput, 0.0);
  for (const auto& sr : result.stations) {
    EXPECT_GE(sr.queue_length, 0.0) << sr.name;
    EXPECT_GE(sr.utilization, 0.0) << sr.name;
    EXPECT_LE(sr.utilization, 1.0 + 1e-9) << sr.name;
  }
}


TEST(Mva, ZeroPopulationIsDefinedAndAudited) {
  // Regression: solve(0) used to return zeroed per-station fields without
  // ever passing through the audit block. The empty system is now an
  // explicitly defined result: all fields finite, utilization exactly 0.
  ClosedNetwork net(2.0);
  net.add_station(make_queueing_station("web", 3.0));
  net.add_station(make_multiserver_station("app", 2, 1.5, 10));
  const auto r = net.solve(0);
  EXPECT_EQ(r.population, 0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.response_time, 0.0);
  ASSERT_EQ(r.stations.size(), 2u);
  for (const auto& s : r.stations) {
    EXPECT_TRUE(std::isfinite(s.residence_time));
    EXPECT_DOUBLE_EQ(s.queue_length, 0.0);
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
  }
  EXPECT_DOUBLE_EQ(r.little_check(), 0.0);
  // A cold cache stays cold: population 0 runs no recursion.
  EXPECT_EQ(net.solved_population(), 0);
}

TEST(Mva, IncrementalSolveIsBitIdenticalToFromScratch) {
  // Golden determinism sweep: one long-lived network absorbs a randomized
  // sequence of mutations (rate edits, think-time edits, station adds)
  // interleaved with solves at jumping populations, and every result must
  // be bitwise identical (EXPECT_EQ on doubles, no tolerance) to a fresh
  // network solving from scratch.
  util::Rng rng(20260808);
  const auto random_rates = [&rng] {
    std::vector<double> rates;
    const int len = rng.uniform_int(1, 8);
    for (int i = 0; i < len; ++i) rates.push_back(rng.uniform(0.2, 12.0));
    return rates;
  };

  double think = 1.0;
  std::vector<Station> spec;
  spec.push_back(Station{"s0", 1.0, random_rates()});
  ClosedNetwork cached(think);
  cached.add_station(spec[0]);

  const auto fresh = [&] {
    ClosedNetwork net(think);
    for (const auto& s : spec) net.add_station(s);
    return net;
  };

  for (int round = 0; round < 200; ++round) {
    switch (rng.uniform_int(0, 9)) {
      case 0:  // think-time edit
        think = rng.uniform(0.0, 4.0);
        cached.set_think_time(think);
        break;
      case 1: {  // rate-table edit
        const auto i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(spec.size()) - 1));
        spec[i].rates = random_rates();
        cached.set_station_rates(i, spec[i].rates);
        break;
      }
      case 2:  // station add (bounded so pairs and the odd tail both occur)
        if (spec.size() < 5) {
          spec.push_back(Station{"s" + std::to_string(spec.size()),
                                 rng.uniform(0.5, 2.0), random_rates()});
          cached.add_station(spec.back());
        }
        break;
      default:
        break;  // no mutation: exercise resumed and cached solves
    }

    const int population = rng.uniform_int(0, 60);
    ClosedNetwork scratch = fresh();
    if (population >= 1 && rng.bernoulli(0.3)) {
      const auto a = cached.throughput_curve(population);
      const auto b = scratch.throughput_curve(population);
      ASSERT_EQ(a.size(), b.size()) << "round " << round;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "round " << round << " X(" << i + 1 << ")";
      }
    }
    const auto a = cached.solve(population);
    const auto b = scratch.solve(population);
    EXPECT_EQ(a.throughput, b.throughput) << "round " << round;
    EXPECT_EQ(a.response_time, b.response_time) << "round " << round;
    ASSERT_EQ(a.stations.size(), b.stations.size());
    for (std::size_t s = 0; s < a.stations.size(); ++s) {
      EXPECT_EQ(a.stations[s].residence_time, b.stations[s].residence_time)
          << "round " << round << " station " << s;
      EXPECT_EQ(a.stations[s].queue_length, b.stations[s].queue_length)
          << "round " << round << " station " << s;
      EXPECT_EQ(a.stations[s].utilization, b.stations[s].utilization)
          << "round " << round << " station " << s;
    }
    EXPECT_GE(cached.solved_population(), population);
  }
}

TEST(Mva, CacheKeptOnIdenticalMutation) {
  ClosedNetwork net(1.5);
  net.add_station(make_queueing_station("s", 2.0));
  net.solve(10);
  EXPECT_EQ(net.solved_population(), 10);
  net.set_think_time(1.5);                  // identical: cache survives
  net.set_station_rates(0, {2.0});          // identical: cache survives
  EXPECT_EQ(net.solved_population(), 10);
  net.set_station_rates(0, {2.5});          // real change: cache drops
  EXPECT_EQ(net.solved_population(), 0);
}

}  // namespace
}  // namespace rac::queueing
