#include "queueing/mva.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rac::queueing {
namespace {

// Closed single-queue + think-time model with known exact solutions (the
// "machine repairman" / interactive system model).

TEST(Mva, SingleCustomerNoQueueing) {
  ClosedNetwork net(10.0);
  net.add_station(make_queueing_station("s", 2.0));  // service time 0.5
  const auto r = net.solve(1);
  EXPECT_NEAR(r.response_time, 0.5, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0 / 10.5, 1e-12);
  EXPECT_NEAR(r.little_check(), 1.0, 1e-9);
}

TEST(Mva, TwoCustomersExactSolution) {
  // N=2, Z=0, single exponential server, mean service 1: R(2) = 2, X = 1.
  ClosedNetwork net(0.0);
  net.add_station(make_queueing_station("s", 1.0));
  const auto r = net.solve(2);
  EXPECT_NEAR(r.response_time, 2.0, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0, 1e-12);
}

TEST(Mva, LittlesLawHoldsForAllPopulations) {
  ClosedNetwork net(5.0);
  net.add_station(make_queueing_station("a", 10.0));
  net.add_station(make_multiserver_station("b", 4, 3.0, 300));
  for (int n : {1, 5, 20, 100, 300}) {
    const auto r = net.solve(n);
    EXPECT_NEAR(r.little_check(), static_cast<double>(n), 1e-6) << n;
  }
}

TEST(Mva, ThroughputBoundedByBottleneck) {
  ClosedNetwork net(1.0);
  net.add_station(make_queueing_station("bottleneck", 4.0));
  for (int n : {1, 10, 50, 200}) {
    EXPECT_LE(net.solve(n).throughput, 4.0 + 1e-9);
  }
  // And it approaches the bound under heavy population.
  EXPECT_GT(net.solve(200).throughput, 3.99);
}

TEST(Mva, ThroughputMonotoneInPopulation) {
  ClosedNetwork net(2.0);
  net.add_station(make_multiserver_station("s", 2, 1.5, 200));
  double prev = 0.0;
  for (int n = 1; n <= 200; n += 10) {
    const double x = net.solve(n).throughput;
    EXPECT_GE(x, prev - 1e-9);
    prev = x;
  }
}

TEST(Mva, ResponseTimeMonotoneInPopulation) {
  ClosedNetwork net(2.0);
  net.add_station(make_queueing_station("s", 5.0));
  double prev = 0.0;
  for (int n = 1; n <= 100; n += 5) {
    const double r = net.solve(n).response_time;
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
}

TEST(Mva, MultiserverBeatsSingleFatServerAtLowLoadEqualCapacity) {
  // c servers of rate mu vs one server of rate c*mu: same capacity, but
  // the fat server is strictly faster per job, so R_fat <= R_multi; the
  // multiserver still beats a SINGLE slow server of rate mu.
  ClosedNetwork multi(1.0);
  multi.add_station(make_multiserver_station("m", 4, 1.0, 100));
  ClosedNetwork slow(1.0);
  slow.add_station(make_queueing_station("s", 1.0));
  ClosedNetwork fat(1.0);
  fat.add_station(make_queueing_station("f", 4.0));
  const int n = 20;
  EXPECT_LT(multi.solve(n).response_time, slow.solve(n).response_time);
  EXPECT_LE(fat.solve(n).response_time,
            multi.solve(n).response_time + 1e-9);
}

TEST(Mva, UtilizationApproachesOneUnderSaturation) {
  ClosedNetwork net(0.5);
  net.add_station(make_queueing_station("s", 2.0));
  const auto r = net.solve(100);
  ASSERT_EQ(r.stations.size(), 1u);
  EXPECT_GT(r.stations[0].utilization, 0.999);
}

TEST(Mva, VisitRatioScalesResidence) {
  ClosedNetwork once(10.0);
  once.add_station(make_queueing_station("s", 100.0, 1.0));
  ClosedNetwork twice(10.0);
  twice.add_station(make_queueing_station("s", 100.0, 2.0));
  // At negligible load, residence time doubles with the visit ratio.
  EXPECT_NEAR(twice.solve(1).response_time,
              2.0 * once.solve(1).response_time, 1e-9);
}

TEST(Mva, ZeroPopulationIsEmptyResult) {
  ClosedNetwork net(1.0);
  net.add_station(make_queueing_station("s", 1.0));
  const auto r = net.solve(0);
  EXPECT_DOUBLE_EQ(r.throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.response_time, 0.0);
}

TEST(Mva, ThroughputCurveMatchesPerPopulationSolves) {
  ClosedNetwork net(0.0);
  net.add_station(make_multiserver_station("a", 3, 2.0, 50));
  net.add_station(make_queueing_station("b", 5.0));
  const auto curve = net.throughput_curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (int n : {1, 7, 25, 50}) {
    EXPECT_NEAR(curve[static_cast<std::size_t>(n - 1)],
                net.solve(n).throughput, 1e-9)
        << n;
  }
}

TEST(Mva, ThroughputCurveIsMonotoneForPsNetworks) {
  ClosedNetwork net(0.0);
  net.add_station(make_multiserver_station("a", 2, 1.0, 100));
  net.add_station(make_multiserver_station("b", 4, 1.5, 100));
  const auto curve = net.throughput_curve(100);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
}

TEST(Mva, FlowEquivalentAggregationIsExact) {
  // Solving delay + subnetwork directly must equal delay + FESC station
  // built from the subnetwork's throughput curve (exactness of
  // flow-equivalent aggregation in product-form networks).
  const int n = 60;
  ClosedNetwork direct(3.0);
  direct.add_station(make_queueing_station("a", 4.0));
  direct.add_station(make_multiserver_station("b", 2, 3.0, n));

  ClosedNetwork sub(0.0);
  sub.add_station(make_queueing_station("a", 4.0));
  sub.add_station(make_multiserver_station("b", 2, 3.0, n));
  Station fesc;
  fesc.name = "agg";
  fesc.rates = sub.throughput_curve(n);
  ClosedNetwork outer(3.0);
  outer.add_station(std::move(fesc));

  for (int pop : {1, 10, 30, 60}) {
    EXPECT_NEAR(outer.solve(pop).throughput, direct.solve(pop).throughput,
                1e-6)
        << pop;
  }
}

TEST(Mva, RejectsInvalidInputs) {
  EXPECT_THROW(ClosedNetwork(-1.0), std::invalid_argument);
  ClosedNetwork net(0.0);
  EXPECT_THROW(net.solve(1), std::invalid_argument);  // empty, zero think
  EXPECT_THROW(net.add_station(Station{"x", 1.0, {}}), std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"x", 1.0, {0.0}}),
               std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"x", -1.0, {1.0}}),
               std::invalid_argument);
  net.add_station(make_queueing_station("ok", 1.0));
  EXPECT_THROW(net.solve(-1), std::invalid_argument);
  EXPECT_THROW(make_queueing_station("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(make_multiserver_station("bad", 0, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW(net.throughput_curve(0), std::invalid_argument);
}

// Regression for the contract migration: a station with a negative service
// demand (negative rate or visit ratio) must be rejected at add time --
// letting it through poisons the recursion with negative queue lengths,
// which the RAC_AUDIT checks in solve() would only catch in audit builds.
TEST(Mva, RejectsNegativeDemand) {
  ClosedNetwork net(1.0);
  EXPECT_THROW(net.add_station(Station{"neg-rate", 1.0, {-2.0}}),
               std::invalid_argument);
  EXPECT_THROW(net.add_station(Station{"neg-visit", -0.5, {2.0}}),
               std::invalid_argument);
  EXPECT_THROW(make_queueing_station("neg", -1.0), std::invalid_argument);
}

// In audit builds this solve additionally runs the finiteness /
// non-negativity / monotone-throughput RAC_AUDIT checks; in default builds
// it is a plain solve. Either way the numbers must be sane.
TEST(Mva, SolveInvariantsHoldOnHealthyNetwork) {
  ClosedNetwork net(2.0);
  net.add_station(make_multiserver_station("web", 4, 20.0, 64));
  net.add_station(make_queueing_station("db", 35.0, 0.8));
  const auto curve = net.throughput_curve(64);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i] + 1e-9, curve[i - 1]) << i;
  }
  const auto result = net.solve(64);
  EXPECT_GT(result.throughput, 0.0);
  for (const auto& sr : result.stations) {
    EXPECT_GE(sr.queue_length, 0.0) << sr.name;
    EXPECT_GE(sr.utilization, 0.0) << sr.name;
    EXPECT_LE(sr.utilization, 1.0 + 1e-9) << sr.name;
  }
}

}  // namespace
}  // namespace rac::queueing
