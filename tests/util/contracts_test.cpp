#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/log.hpp"

namespace rac::util {
namespace {

TEST(Contracts, PassingContractEvaluatesConditionOnceAndContinues) {
  ScopedContractMode guard(ContractMode::kThrow);
  int evaluations = 0;
  RAC_EXPECT((++evaluations, true), "never fails");
  EXPECT_EQ(evaluations, 1);
}

TEST(Contracts, ThrowModeThrowsContractViolationWithContext) {
  ScopedContractMode guard(ContractMode::kThrow);
  try {
    RAC_EXPECT(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "contract did not fire";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("EXPECT failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, EnsureAndInvariantCarryTheirKind) {
  ScopedContractMode guard(ContractMode::kThrow);
  EXPECT_THROW(RAC_ENSURE(false, "post"), ContractViolation);
  EXPECT_THROW(RAC_INVARIANT(false, "inv"), ContractViolation);
  try {
    RAC_ENSURE(false, "post");
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ENSURE failed"),
              std::string::npos);
  }
}

TEST(Contracts, LogModeLogsAndContinues) {
  ScopedContractMode guard(ContractMode::kLog);
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  int after = 0;
  RAC_INVARIANT(false, "continuing anyway");
  after = 1;  // reached only because kLog returns
  set_log_sink(nullptr);
  EXPECT_EQ(after, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines.front().find("INVARIANT failed"), std::string::npos);
  EXPECT_NE(lines.front().find("continuing anyway"), std::string::npos);
}

TEST(Contracts, ScopedModeRestoresPreviousMode) {
  set_contract_mode(ContractMode::kThrow);
  {
    ScopedContractMode guard(ContractMode::kLog);
    EXPECT_EQ(contract_mode(), ContractMode::kLog);
    {
      ScopedContractMode inner(ContractMode::kAbort);
      EXPECT_EQ(contract_mode(), ContractMode::kAbort);
    }
    EXPECT_EQ(contract_mode(), ContractMode::kLog);
  }
  EXPECT_EQ(contract_mode(), ContractMode::kThrow);
}

TEST(ContractsDeathTest, AbortModeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        set_contract_mode(ContractMode::kAbort);
        RAC_EXPECT(false, "fatal in abort mode");
      },
      "EXPECT failed");
}

TEST(Contracts, AuditEvaluatesConditionOnlyInAuditBuilds) {
  ScopedContractMode guard(ContractMode::kThrow);
  int evaluations = 0;
  RAC_AUDIT((++evaluations, true), "side effect probe");
  EXPECT_EQ(evaluations, kAuditEnabled ? 1 : 0);
}

TEST(Contracts, AuditFiresOnlyInAuditBuilds) {
  ScopedContractMode guard(ContractMode::kThrow);
  if (kAuditEnabled) {
    EXPECT_THROW(RAC_AUDIT(false, "audit failure"), ContractViolation);
  } else {
    EXPECT_NO_THROW(RAC_AUDIT(false, "audit failure"));
  }
}

}  // namespace
}  // namespace rac::util
