#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

namespace rac::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LognormalUnitHasMeanOne) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_unit(0.3);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::array<double, 3> weights = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, CategoricalSingleBucket) {
  Rng rng(31);
  const std::array<double, 1> weights = {0.5};
  EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngState, RestoreContinuesTheExactStream) {
  Rng rng(41);
  for (int i = 0; i < 17; ++i) rng();
  const RngState mid = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng());

  Rng resumed(999);  // arbitrary seed; restore overwrites it
  resumed.restore(mid);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(resumed(), expected[i]) << i;
}

TEST(RngState, BoxMullerCacheSurvivesRestore) {
  // normal() computes values in pairs; snapshotting between the two halves
  // must preserve the cached half or every later draw shifts.
  Rng rng(43);
  rng.normal();  // leaves the second half cached
  const RngState mid = rng.state();
  EXPECT_TRUE(mid.has_cached_normal);
  const double next = rng.normal();  // consumes the cache

  Rng resumed(1);
  resumed.restore(mid);
  EXPECT_EQ(resumed.normal(), next);
  // And the streams stay locked together past the cache.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(resumed.normal(), rng.normal());
}

TEST(RngState, RejectsAllZeroWords) {
  Rng rng(1);
  RngState dead;  // words all zero: the one state xoshiro cannot leave
  EXPECT_THROW(rng.restore(dead), std::invalid_argument);
}

TEST(Rng, GeometricMeanIsOneOverP) {
  // Convention audit (the session-length off-by-one question): geometric(p)
  // counts bernoulli(p) trials up to AND INCLUDING the first success, so
  // the support starts at 1 and E[X] = 1/p exactly -- not the
  // failures-before-success convention whose mean is (1-p)/p.
  // SessionGenerator::draw_session_length therefore passes p = 1/mean
  // with no +1/-1 correction.
  Rng rng(77);
  for (const double p : {0.5, 0.2, 0.05}) {
    const int n = 200000;
    long long total = 0;
    int min_seen = 1 << 30;
    for (int i = 0; i < n; ++i) {
      const int draw = rng.geometric(p);
      total += draw;
      min_seen = std::min(min_seen, draw);
    }
    const double mean = static_cast<double>(total) / n;
    EXPECT_NEAR(mean, 1.0 / p, (1.0 / p) * 0.03) << "p = " << p;
    EXPECT_GE(min_seen, 1) << "p = " << p;
  }
}

TEST(Rng, GeometricWithCertainSuccessIsAlwaysOne) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1);
}

TEST(SplitMix, KnownFirstOutputChangesState) {
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  EXPECT_NE(state, 0u);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace rac::util
