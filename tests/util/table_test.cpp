#include "util/table.hpp"

#include <gtest/gtest.h>

namespace rac::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name         value"), std::string::npos);
  EXPECT_NE(s.find("longer-name  22"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"x", "y"});
  t.add_row({1.23456, 2.0}, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(TextTable, CsvBasic) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"a"});
  t.add_row({std::vector<std::string>{"has,comma"}});
  t.add_row({std::vector<std::string>{"has\"quote"}});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, CountsRowsAndCols) {
  TextTable t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace rac::util
