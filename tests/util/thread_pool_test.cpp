#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace rac::util {
namespace {

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.parallel_map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, SizeOnePoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  bool saw_worker_flag = false;
  pool.parallel_for(3, [&](std::size_t) {
    saw_worker_flag = saw_worker_flag || ThreadPool::on_worker_thread();
  });
  EXPECT_FALSE(saw_worker_flag);  // no worker threads exist
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

// The lowest-index exception is rethrown -- deterministically, regardless
// of which worker hit its error first -- and every task still runs.
TEST(ThreadPool, ExceptionPropagationIsDeterministic) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(16, [&](std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i >= 5) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception at " << threads << " threads";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5") << "at " << threads << " threads";
    }
    EXPECT_EQ(ran.load(), 16) << "at " << threads << " threads";
  }
}

// A task may itself call parallel_for; the nested region runs inline on
// the worker instead of deadlocking on a saturated queue.
TEST(ThreadPool, NestedSubmitRunsInline) {
  ThreadPool pool(2);
  std::vector<std::size_t> totals(8, 0);
  pool.parallel_for(totals.size(), [&](std::size_t i) {
    std::vector<std::size_t> inner(10, 0);
    pool.parallel_for(inner.size(), [&](std::size_t j) {
      EXPECT_TRUE(ThreadPool::on_worker_thread());
      inner[j] = j + 1;
    });
    totals[i] = std::accumulate(inner.begin(), inner.end(), std::size_t{0});
  });
  for (const std::size_t total : totals) {
    EXPECT_EQ(total, 55u);
  }
}

TEST(ThreadPool, TelemetryHooksFireOncePerTask) {
  std::atomic<int> tasks_timed{0};
  std::atomic<int> depth_reports{0};
  PoolTelemetry telemetry;
  telemetry.task_us = [&](double us) {
    EXPECT_GE(us, 0.0);
    tasks_timed.fetch_add(1, std::memory_order_relaxed);
  };
  telemetry.queue_depth = [&](std::size_t) {
    depth_reports.fetch_add(1, std::memory_order_relaxed);
  };
  {
    ThreadPool pool(4, std::move(telemetry));
    pool.parallel_for(8, [](std::size_t) {});
  }
  EXPECT_EQ(tasks_timed.load(), 8);
  EXPECT_GE(depth_reports.load(), 1);
}

TEST(ThreadPool, ParseThreadCountAcceptsPositiveIntegersOnly) {
  EXPECT_EQ(parse_thread_count("1"), std::size_t{1});
  EXPECT_EQ(parse_thread_count("8"), std::size_t{8});
  EXPECT_EQ(parse_thread_count("  12"), std::size_t{12});  // strtol skips space
  EXPECT_EQ(parse_thread_count(nullptr), std::nullopt);
  EXPECT_EQ(parse_thread_count(""), std::nullopt);
  EXPECT_EQ(parse_thread_count("0"), std::nullopt);
  EXPECT_EQ(parse_thread_count("-3"), std::nullopt);
  EXPECT_EQ(parse_thread_count("lots"), std::nullopt);
  EXPECT_EQ(parse_thread_count("4x"), std::nullopt);  // trailing garbage
  EXPECT_EQ(parse_thread_count("3.5"), std::nullopt);
  EXPECT_EQ(parse_thread_count("99999999999999999999999"),
            std::nullopt);  // overflows long
}

TEST(ThreadPool, DefaultThreadCountReadsEnvironment) {
  ASSERT_EQ(setenv("RAC_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(unsetenv("RAC_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1u);
}

// A set-but-invalid RAC_THREADS falls back to hardware concurrency AND
// warns: a typo in a job script must be visible, not a silent one-thread
// (or hardware-wide) surprise.
TEST(ThreadPool, DefaultThreadCountWarnsOnInvalidEnvironment) {
  std::vector<std::string> warnings;
  set_log_sink([&](LogLevel level, const std::string& line) {
    if (level == LogLevel::kWarn) warnings.push_back(line);
  });
  for (const char* bad : {"0", "-2", "lots", "4x"}) {
    ASSERT_EQ(setenv("RAC_THREADS", bad, 1), 0);
    EXPECT_GE(default_thread_count(), 1u) << "RAC_THREADS=" << bad;
  }
  ASSERT_EQ(unsetenv("RAC_THREADS"), 0);
  set_log_sink(nullptr);
  ASSERT_EQ(warnings.size(), 4u);
  for (const auto& line : warnings) {
    EXPECT_NE(line.find("RAC_THREADS"), std::string::npos) << line;
  }
  // The unset case must stay quiet.
  warnings.clear();
  set_log_sink([&](LogLevel level, const std::string& line) {
    if (level == LogLevel::kWarn) warnings.push_back(line);
  });
  EXPECT_GE(default_thread_count(), 1u);
  set_log_sink(nullptr);
  EXPECT_TRUE(warnings.empty());
}

TEST(DeriveSeed, DeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));
  // Sequential indices from the same base must give unrelated streams:
  // spot-check that the first draws differ.
  Rng a(derive_seed(42, 0));
  Rng b(derive_seed(42, 1));
  EXPECT_NE(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace rac::util
