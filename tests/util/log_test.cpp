#include "util/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <thread>
#include <vector>

namespace rac::util {
namespace {

// Every test restores the global logger state it touches.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = log_level(); }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(previous_level_);
  }
  LogLevel previous_level_;
};

TEST_F(LogTest, SinkReceivesFormattedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  set_log_level(LogLevel::kInfo);
  log_info("policy switch to context-", 2);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("[INFO] policy switch to context-2"),
            std::string::npos);
}

TEST_F(LogTest, LinesStartWithUtcTimestamp) {
  std::string captured;
  set_log_sink([&](LogLevel, const std::string& line) { captured = line; });
  set_log_level(LogLevel::kWarn);
  log_warn("SLA violation streak");
  const std::regex prefix(
      R"(^\[\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z\] \[WARN\] )");
  EXPECT_TRUE(std::regex_search(captured, prefix)) << captured;
}

TEST_F(LogTest, LevelFilterDropsBelowMinimum) {
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  set_log_level(LogLevel::kWarn);
  log_debug("dropped");
  log_info("dropped");
  log_warn("kept");
  log_error("kept");
  EXPECT_EQ(calls, 2);
  set_log_level(LogLevel::kOff);
  log_error("dropped");
  EXPECT_EQ(calls, 2);
}

TEST_F(LogTest, NullSinkRestoresDefault) {
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  set_log_level(LogLevel::kError);
  log_error("to sink");
  EXPECT_EQ(calls, 1);
  set_log_sink(nullptr);
  // Goes to stderr now; the captured count must not move.
  set_log_level(LogLevel::kOff);  // silence stderr for the test run
  log_error("to stderr");
  EXPECT_EQ(calls, 1);
}

TEST_F(LogTest, ConcurrentLoggingDeliversEveryLineIntact) {
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& line) {
    lines.push_back(line);  // serialized by the logger's mutex
  });
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_info("thread-", t, " line-", i);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto& line : lines) {
    EXPECT_NE(line.find("] [INFO] thread-"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace rac::util
