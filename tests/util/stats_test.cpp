#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace rac::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Ewma, FirstValueInitializes) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.5);
  e.add(0.0);
  for (int i = 0; i < 30; ++i) e.add(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-6);
}

TEST(Ewma, WeightsNewestSample) {
  Ewma e(0.25);
  e.add(0.0);
  e.add(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
  EXPECT_DOUBLE_EQ(w.back(), 10.0);
}

TEST(Ewma, RejectsAlphaOutsideUnitInterval) {
  EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(Ewma{-0.1}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.5}, std::invalid_argument);
  EXPECT_NO_THROW(Ewma{1.0});  // alpha == 1 means "track the last sample"
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow{0}, std::invalid_argument);
}

TEST(SlidingWindow, ResetClears) {
  SlidingWindow w(2);
  w.add(5.0);
  w.reset();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 9.5);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 100.5), std::invalid_argument);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

TEST(Ewma, RestoreResumesTheAverage) {
  Ewma original(0.25);
  original.add(100.0);
  original.add(200.0);

  Ewma resumed(0.25);
  resumed.restore(original.value(), !original.empty());
  EXPECT_FALSE(resumed.empty());
  EXPECT_DOUBLE_EQ(resumed.value(), original.value());
  original.add(50.0);
  resumed.add(50.0);
  EXPECT_DOUBLE_EQ(resumed.value(), original.value());
}

TEST(Ewma, RestoreUninitializedIgnoresValue) {
  Ewma e(0.5);
  e.add(10.0);
  e.restore(999.0, false);
  EXPECT_TRUE(e.empty());
  e.add(3.0);
  EXPECT_DOUBLE_EQ(e.value(), 3.0);  // first sample, not blended with 999
}

TEST(Ewma, RestoreRejectsNonFiniteInitializedValue) {
  Ewma e(0.5);
  EXPECT_THROW(e.restore(std::numeric_limits<double>::quiet_NaN(), true),
               std::invalid_argument);
  // Non-finite is fine when the state says "no samples yet".
  e.restore(std::numeric_limits<double>::quiet_NaN(), false);
  EXPECT_TRUE(e.empty());
}

TEST(SlidingWindow, ValuesAreOldestFirstAndRestoreRoundTrips) {
  SlidingWindow original(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) original.add(x);  // 1.0 evicted
  EXPECT_EQ(original.values(), (std::vector<double>{2.0, 3.0, 4.0}));

  SlidingWindow resumed(3);
  resumed.restore(original.values());
  EXPECT_EQ(resumed.values(), original.values());
  EXPECT_DOUBLE_EQ(resumed.mean(), original.mean());
  // Eviction order must continue identically.
  original.add(5.0);
  resumed.add(5.0);
  EXPECT_EQ(resumed.values(), original.values());
}

TEST(SlidingWindow, RestoreRejectsOversizedHistory) {
  SlidingWindow w(2);
  const std::vector<double> three = {1.0, 2.0, 3.0};
  EXPECT_THROW(w.restore(three), std::invalid_argument);
}

// Regression (PR 5): a single non-finite sample used to poison the Ewma
// value / window mean forever -- and the corrupt state would then survive
// a checkpoint/restore round trip.
TEST(Ewma, AddRejectsNonFiniteSamples) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_THROW(e.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(e.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(e.add(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // The running average is untouched by the rejected samples.
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(SlidingWindow, AddRejectsNonFiniteSamples) {
  SlidingWindow w(3);
  w.add(5.0);
  EXPECT_THROW(w.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(w.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
}

TEST(SlidingWindow, RestoreRejectsNonFiniteSamples) {
  SlidingWindow w(3);
  w.add(1.0);
  const std::vector<double> poisoned = {
      2.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(w.restore(poisoned), std::invalid_argument);
  // Failed restore leaves the window unchanged.
  EXPECT_EQ(w.values(), (std::vector<double>{1.0}));
}

TEST(RSquared, PerfectFitIsOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> p = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(y, p), 0.0, 1e-12);
}

TEST(RSquared, RejectsMismatchedOrEmptyInputs) {
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<double> p = {1.0};
  EXPECT_THROW(r_squared(y, p), std::invalid_argument);
  EXPECT_THROW(r_squared({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rac::util
