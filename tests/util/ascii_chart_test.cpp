#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace rac::util {
namespace {

TEST(AsciiChart, RendersTitleLegendAndAxis) {
  AsciiChart chart(40, 10);
  chart.set_title("my chart");
  chart.add_series({"series-a", '*', {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}});
  const std::string s = chart.str();
  EXPECT_NE(s.find("my chart"), std::string::npos);
  EXPECT_NE(s.find("series-a"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(AsciiChart, EmptyChartSaysNoData) {
  AsciiChart chart;
  EXPECT_NE(chart.str().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesSymbols) {
  AsciiChart chart(40, 10);
  chart.add_series({"up", 'u', {0.0, 1.0}, {0.0, 1.0}});
  chart.add_series({"down", 'd', {0.0, 1.0}, {1.0, 0.0}});
  const std::string s = chart.str();
  EXPECT_NE(s.find('u'), std::string::npos);
  EXPECT_NE(s.find('d'), std::string::npos);
}

TEST(AsciiChart, RejectsBadSeries) {
  AsciiChart chart;
  EXPECT_THROW(chart.add_series({"bad", 'x', {1.0}, {}}),
               std::invalid_argument);
  EXPECT_THROW(chart.add_series({"empty", 'x', {}, {}}),
               std::invalid_argument);
}

TEST(AsciiChart, RejectsTinyPlotArea) {
  EXPECT_THROW(AsciiChart(4, 2), std::invalid_argument);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(40, 8);
  chart.add_series({"flat", 'f', {0.0, 1.0, 2.0}, {5.0, 5.0, 5.0}});
  EXPECT_NE(chart.str().find('f'), std::string::npos);
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart chart(40, 8);
  chart.add_series({"dot", 'o', {1.0}, {2.0}});
  EXPECT_NE(chart.str().find('o'), std::string::npos);
}

}  // namespace
}  // namespace rac::util
