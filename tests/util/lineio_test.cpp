#include "util/lineio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

namespace rac::util {
namespace {

TEST(LineIo, FormatDoubleRoundTripsExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          1.5,
                          -2.75,
                          0.1,
                          1.0 / 3.0,
                          3.141592653589793,
                          1e-300,
                          -1e300,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::epsilon()};
  for (const double v : cases) {
    const std::string token = format_double(v);
    const double back = parse_double(token, "test");
    // Bit-exact, including the sign of zero.
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << token;
    EXPECT_EQ(back, v) << token;
  }
}

TEST(LineIo, FormatDoubleEmitsHexWithoutPrefix) {
  // to_chars hex format: mantissa 'p' exponent, no "0x".
  const std::string token = format_double(1.5);
  EXPECT_EQ(token, "1.8p+0");
}

TEST(LineIo, ParseDoubleAcceptsLegacyPrintfHex) {
  // v1 files wrote printf "%a" spellings, 0x prefix included.
  EXPECT_EQ(parse_double("0x1.8p+0", "test"), 1.5);
  EXPECT_EQ(parse_double("-0x1.8p+0", "test"), -1.5);
  EXPECT_EQ(parse_double("+0x1p-1", "test"), 0.5);
  EXPECT_EQ(parse_double("0X1P+3", "test"), 8.0);
}

TEST(LineIo, ParseDoubleAcceptsDecimalForms) {
  EXPECT_EQ(parse_double("1.25", "test"), 1.25);
  EXPECT_EQ(parse_double("-3", "test"), -3.0);
  EXPECT_EQ(parse_double("2e3", "test"), 2000.0);
}

TEST(LineIo, ParseDoubleHandlesNonFinite) {
  EXPECT_TRUE(std::isinf(parse_double(format_double(
                  std::numeric_limits<double>::infinity()), "test")));
  EXPECT_TRUE(std::isnan(parse_double(format_double(
                  std::numeric_limits<double>::quiet_NaN()), "test")));
}

TEST(LineIo, ParseDoubleRejectsMalformedTokens) {
  for (const char* bad : {"", "x", "1.5x", "1,5", "0x", "p+0", "--1",
                          "1.5 ", "0x1.8p+0z"}) {
    EXPECT_THROW(parse_double(bad, "ctx"), std::runtime_error) << bad;
  }
}

TEST(LineIo, ParseErrorsNameTheCaller) {
  try {
    parse_double("bogus", "load_qtable row 3");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("load_qtable row 3"),
              std::string::npos);
  }
}

TEST(LineIo, IntegerRoundTrips) {
  EXPECT_EQ(parse_i64(format_i64(-42), "test"), -42);
  EXPECT_EQ(parse_i64(format_i64(std::numeric_limits<std::int64_t>::min()),
                      "test"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_u64(format_u64(std::numeric_limits<std::uint64_t>::max()),
                      "test"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LineIo, IntegerParsersRejectMalformedTokens) {
  EXPECT_THROW(parse_i64("12x", "ctx"), std::runtime_error);
  EXPECT_THROW(parse_i64("", "ctx"), std::runtime_error);
  EXPECT_THROW(parse_u64("-1", "ctx"), std::runtime_error);
  EXPECT_THROW(parse_int("3000000000", "ctx"), std::runtime_error);
  EXPECT_EQ(parse_int("-7", "ctx"), -7);
}

TEST(LineIo, ReadTokenThrowsAtEndOfStream) {
  std::istringstream is("one two");
  EXPECT_EQ(read_token(is, "ctx"), "one");
  EXPECT_EQ(read_token(is, "ctx"), "two");
  EXPECT_THROW(read_token(is, "ctx"), std::runtime_error);
}

TEST(LineIo, ExpectTokenMismatchThrows) {
  std::istringstream is("actual");
  EXPECT_THROW(expect_token(is, "expected", "ctx"), std::runtime_error);
}

TEST(LineIo, AtomicWriteFileReplacesContentsAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "/rac_lineio_atomic.txt";
  atomic_write_file(path, "first");
  atomic_write_file(path, "second");
  std::ifstream is(path);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(LineIo, AtomicWriteFileThrowsOnUnwritableDirectory) {
  EXPECT_THROW(atomic_write_file("/nonexistent/dir/file.txt", "x"),
               std::ios_base::failure);
}

}  // namespace
}  // namespace rac::util
