#include "util/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace rac::util {
namespace {

TEST(LeastSquares, RecoversExactLinearModel) {
  // y = 2 + 3x over a few points; features [1, x].
  std::vector<double> rows;
  std::vector<double> ys;
  for (double x : {0.0, 1.0, 2.0, 5.0}) {
    rows.push_back(1.0);
    rows.push_back(x);
    ys.push_back(2.0 + 3.0 * x);
  }
  const auto model = fit_least_squares(rows, 2, ys);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.weights()[1], 3.0, 1e-6);
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 10.0}), 32.0, 1e-5);
}

TEST(LeastSquares, RejectsBadDimensions) {
  std::vector<double> rows = {1.0, 2.0, 3.0};
  std::vector<double> ys = {1.0};
  EXPECT_THROW(fit_least_squares(rows, 2, ys), std::invalid_argument);
  EXPECT_THROW(fit_least_squares(rows, 0, ys), std::invalid_argument);
}

TEST(LeastSquares, RejectsUnderdeterminedSystem) {
  std::vector<double> rows = {1.0, 2.0};
  std::vector<double> ys = {3.0};
  EXPECT_THROW(fit_least_squares(rows, 2, ys), std::invalid_argument);
}

TEST(LeastSquares, PredictRejectsWidthMismatch) {
  std::vector<double> rows = {1.0, 0.0, 1.0, 1.0, 1.0, 2.0};
  std::vector<double> ys = {0.0, 1.0, 2.0};
  const auto model = fit_least_squares(rows, 2, ys);
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Poly1D, ExactQuadraticRecovery) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = -5.0; x <= 5.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(1.0 - 2.0 * x + 0.5 * x * x);
  }
  const auto poly = Poly1D::fit(xs, ys, 2);
  for (double x : {-4.5, 0.3, 3.7}) {
    EXPECT_NEAR(poly.predict(x), 1.0 - 2.0 * x + 0.5 * x * x, 1e-6);
  }
}

TEST(Poly1D, ArgminOfConvexParabola) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    xs.push_back(x);
    ys.push_back((x - 7.0) * (x - 7.0) + 3.0);
  }
  const auto poly = Poly1D::fit(xs, ys, 2);
  EXPECT_NEAR(poly.argmin(0.0, 10.0), 7.0, 0.05);
}

TEST(Poly1D, NoisyFitStaysClose) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    xs.push_back(x);
    ys.push_back(2.0 * x * x - x + rng.normal(0.0, 0.1));
  }
  const auto poly = Poly1D::fit(xs, ys, 2);
  EXPECT_NEAR(poly.predict(2.0), 6.0, 0.1);
}

TEST(Poly1D, RejectsTooFewPoints) {
  std::vector<double> xs = {1.0, 2.0};
  std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(Poly1D::fit(xs, ys, 3), std::invalid_argument);
}

TEST(QuadraticSurface, RecoversSeparableQuadratic) {
  // y = (x0-1)^2 + 2*(x1+2)^2, sampled on a grid.
  std::vector<double> points;
  std::vector<double> ys;
  for (double a = -4.0; a <= 4.0; a += 1.0) {
    for (double b = -4.0; b <= 4.0; b += 1.0) {
      points.push_back(a);
      points.push_back(b);
      ys.push_back((a - 1.0) * (a - 1.0) + 2.0 * (b + 2.0) * (b + 2.0));
    }
  }
  const auto surface = QuadraticSurface::fit(points, 2, ys);
  const std::vector<double> probe = {2.5, -1.0};
  EXPECT_NEAR(surface.predict(probe), 1.5 * 1.5 + 2.0, 1e-5);
}

TEST(QuadraticSurface, CapturesInteractionTerm) {
  std::vector<double> points;
  std::vector<double> ys;
  for (double a = -2.0; a <= 2.0; a += 0.5) {
    for (double b = -2.0; b <= 2.0; b += 0.5) {
      points.push_back(a);
      points.push_back(b);
      ys.push_back(3.0 * a * b);
    }
  }
  const auto surface = QuadraticSurface::fit(points, 2, ys);
  const std::vector<double> probe = {1.5, -0.5};
  EXPECT_NEAR(surface.predict(probe), 3.0 * 1.5 * -0.5, 1e-5);
}

TEST(QuadraticSurface, CubicTermsImproveCubicData) {
  std::vector<double> points;
  std::vector<double> ys;
  for (double a = -2.0; a <= 2.0; a += 0.25) {
    points.push_back(a);
    ys.push_back(a * a * a);
  }
  const auto quad = QuadraticSurface::fit(points, 1, ys, 1e-9, 2);
  const auto cubic = QuadraticSurface::fit(points, 1, ys, 1e-9, 3);
  const std::vector<double> probe = {1.5};
  const double quad_err = std::abs(quad.predict(probe) - 3.375);
  const double cubic_err = std::abs(cubic.predict(probe) - 3.375);
  EXPECT_LT(cubic_err, 1e-5);
  EXPECT_GT(quad_err, 0.1);
}

TEST(QuadraticSurface, RejectsBadDegree) {
  std::vector<double> points = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys = {0.0, 1.0, 4.0, 9.0};
  EXPECT_THROW(QuadraticSurface::fit(points, 1, ys, 1e-9, 1),
               std::invalid_argument);
  EXPECT_THROW(QuadraticSurface::fit(points, 1, ys, 1e-9, 4),
               std::invalid_argument);
}

TEST(QuadraticSurface, PredictRejectsDimensionMismatch) {
  std::vector<double> points;
  std::vector<double> ys;
  for (double a = 0.0; a < 8.0; a += 1.0) {
    points.push_back(a);
    points.push_back(a * 2.0);
    ys.push_back(a);
  }
  const auto surface = QuadraticSurface::fit(points, 2, ys);
  EXPECT_THROW(surface.predict(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(QuadraticSurface, FromPartsReproducesFittedPredictions) {
  // Fit a 2-D surface, tear it into serializable parts, rebuild, and
  // check predictions match bitwise (this is the library-load path).
  std::vector<double> points;
  std::vector<double> ys;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    points.push_back(a);
    points.push_back(b);
    ys.push_back(1.0 + a * a - 0.5 * b + a * b);
  }
  const auto fitted = QuadraticSurface::fit(points, 2, ys);
  const auto rebuilt = QuadraticSurface::from_parts(
      fitted.model(), fitted.dim(), fitted.per_dim_degree(),
      {fitted.means().begin(), fitted.means().end()},
      {fitted.scales().begin(), fitted.scales().end()});
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> probe = {rng.uniform(-2.0, 2.0),
                                       rng.uniform(-2.0, 2.0)};
    EXPECT_EQ(rebuilt.predict(probe), fitted.predict(probe));
  }
}

TEST(QuadraticSurface, FromPartsValidatesEveryInvariant) {
  // dim 2, degree 2 => 1 + 2*2 + 1 = 6 features.
  const LinearModel good(std::vector<double>(6, 0.5));
  const std::vector<double> means = {0.0, 0.0};
  const std::vector<double> scales = {1.0, 1.0};
  EXPECT_NO_THROW(QuadraticSurface::from_parts(good, 2, 2, means, scales));
  // Zero dimension.
  EXPECT_THROW(QuadraticSurface::from_parts(good, 0, 2, {}, {}),
               std::invalid_argument);
  // Degree outside {2, 3}.
  EXPECT_THROW(QuadraticSurface::from_parts(good, 2, 1, means, scales),
               std::invalid_argument);
  // means/scales sized to the wrong dimension.
  EXPECT_THROW(QuadraticSurface::from_parts(good, 2, 2, {0.0}, scales),
               std::invalid_argument);
  EXPECT_THROW(QuadraticSurface::from_parts(good, 2, 2, means, {1.0}),
               std::invalid_argument);
  // Non-positive scale would divide by zero in the feature map.
  EXPECT_THROW(
      QuadraticSurface::from_parts(good, 2, 2, means, {1.0, 0.0}),
      std::invalid_argument);
  // Weight count not matching the feature map.
  const LinearModel short_model(std::vector<double>(5, 0.5));
  EXPECT_THROW(
      QuadraticSurface::from_parts(short_model, 2, 2, means, scales),
      std::invalid_argument);
}

}  // namespace
}  // namespace rac::util
