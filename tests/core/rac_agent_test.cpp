#include "core/rac_agent.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "env/analytic_env.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

PolicyInitOptions fast_init() {
  PolicyInitOptions opt;
  opt.coarse_levels = 4;
  opt.offline_td.max_sweeps = 120;
  return opt;
}

AnalyticEnvOptions env_options(double sigma = 0.1, std::uint64_t seed = 50) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = sigma;
  opt.seed = seed;
  return opt;
}

// A shared, lazily-built two-context library (offline training is the
// expensive part of these tests).
const InitialPolicyLibrary& shared_library() {
  static const InitialPolicyLibrary* lib = [] {
    auto* l = new InitialPolicyLibrary(build_library(
        {SystemContext{MixType::kShopping, VmLevel::kLevel1},
         SystemContext{MixType::kOrdering, VmLevel::kLevel3}},
        [](const SystemContext& ctx) {
          return std::make_unique<AnalyticEnv>(ctx, env_options(0.05, 7));
        },
        fast_init()));
    return l;
  }();
  return *lib;
}

TEST(RacAgent, FirstDecisionMeasuresTheDefaults) {
  RacOptions opt;
  RacAgent agent(opt, shared_library(), 0);
  EXPECT_EQ(agent.decide(), Configuration::defaults());
}

TEST(RacAgent, NameReflectsAblations) {
  RacOptions opt;
  EXPECT_EQ(RacAgent(opt, shared_library(), 0).name(), "RAC");
  EXPECT_EQ(RacAgent(opt, InitialPolicyLibrary{}).name(), "RAC/no-init");
  RacOptions no_online = opt;
  no_online.online_learning = false;
  EXPECT_EQ(RacAgent(no_online, shared_library(), 0).name(),
            "RAC/offline-only");
  RacOptions static_init = opt;
  static_init.adaptive_policy_switching = false;
  EXPECT_EQ(RacAgent(static_init, shared_library(), 0).name(),
            "RAC/static-init");
}

TEST(RacAgent, ActionsMoveAtMostOneParameterPerInterval) {
  RacOptions opt;
  RacAgent agent(opt, shared_library(), 0);
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  Configuration prev = agent.decide();
  agent.observe(prev, env.measure(prev));
  for (int i = 0; i < 20; ++i) {
    const Configuration next = agent.decide();
    int changed = 0;
    for (config::ParamId id : config::kAllParams) {
      if (next.value(id) != prev.value(id)) ++changed;
    }
    EXPECT_LE(changed, 1);
    agent.observe(next, env.measure(next));
    prev = next;
  }
}

TEST(RacAgent, ConvergesToNearOptimalWithinPaperBudget) {
  // Paper claim: near-optimal configuration in fewer than 25 iterations.
  RacOptions opt;
  opt.seed = 21;
  RacAgent agent(opt, shared_library(), 0);
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const auto trace = run_agent(env, agent, {}, 30);

  AnalyticEnvOptions det = env_options(0.0);
  AnalyticEnv truth({MixType::kShopping, VmLevel::kLevel1}, det);
  const double default_rt = truth.evaluate(Configuration::defaults()).response_ms;
  const double late = trace.mean_response_ms(20, 30);
  EXPECT_LT(late, 0.5 * default_rt);
}

TEST(RacAgent, RecordsExperiencePerConfiguration) {
  RacOptions opt;
  RacAgent agent(opt, shared_library(), 0);
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const auto c = agent.decide();
  agent.observe(c, env.measure(c));
  EXPECT_EQ(agent.experience().size(), 1u);
  EXPECT_TRUE(agent.experience().response_ms(c).has_value());
}

TEST(RacAgent, SwitchesPolicyOnContextChange) {
  RacOptions opt;
  opt.seed = 33;
  RacAgent agent(opt, shared_library(), 0);
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {15, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  run_agent(env, agent, schedule, 35);
  EXPECT_GE(agent.policy_switches(), 1);
  ASSERT_TRUE(agent.active_policy().has_value());
  EXPECT_EQ(*agent.active_policy(), 1u);  // the ordering/Level-3 policy
}

TEST(RacAgent, StaticInitNeverSwitchesPolicies) {
  RacOptions opt;
  opt.adaptive_policy_switching = false;
  RacAgent agent(opt, shared_library(), 0);
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {15, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  run_agent(env, agent, schedule, 35);
  EXPECT_EQ(agent.policy_switches(), 0);
  EXPECT_EQ(*agent.active_policy(), 0u);
}

TEST(RacAgent, OfflineOnlyAgentDoesNotGrowQTableFromMeasurements) {
  RacOptions opt;
  opt.online_learning = false;
  RacAgent agent(opt, shared_library(), 0);
  const std::size_t before = agent.qtable().size();
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, env_options());
  for (int i = 0; i < 10; ++i) {
    const auto c = agent.decide();
    agent.observe(c, env.measure(c));
  }
  EXPECT_EQ(agent.qtable().size(), before);
}

TEST(RacAgent, NoInitAgentStartsWithEmptyTable) {
  RacOptions opt;
  RacAgent agent(opt, InitialPolicyLibrary{});
  EXPECT_TRUE(agent.qtable().empty());
  EXPECT_FALSE(agent.active_policy().has_value());
}

}  // namespace
}  // namespace rac::core
