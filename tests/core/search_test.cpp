#include "core/search.hpp"

#include <gtest/gtest.h>

#include "env/analytic_env.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using config::ParamId;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::VmLevel;
using workload::MixType;

AnalyticEnvOptions quiet_env() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

TEST(Search, BeatsTheDefaultConfiguration) {
  AnalyticEnv env({MixType::kOrdering, VmLevel::kLevel1}, quiet_env());
  SearchOptions opt;
  opt.coarse_levels = 3;
  const auto result = find_best_configuration(env, opt);
  EXPECT_LT(result.best_response_ms,
            0.5 * env.evaluate(Configuration{}).response_ms);
  EXPECT_GT(result.evaluations, 81);
}

TEST(Search, ResultIsLocalOptimumOnFineGrid) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  SearchOptions opt;
  opt.coarse_levels = 3;
  const auto result = find_best_configuration(env, opt);
  for (const auto& neighbor : config::ConfigSpace::neighbors(result.best)) {
    EXPECT_GE(env.evaluate(neighbor).response_ms,
              result.best_response_ms - 1e-6);
  }
}

TEST(Search, FindsLargerMaxClientsThanDefault) {
  // All contexts here are slot-starved at the default MaxClients.
  AnalyticEnv env({MixType::kOrdering, VmLevel::kLevel3}, quiet_env());
  SearchOptions opt;
  opt.coarse_levels = 3;
  const auto result = find_best_configuration(env, opt);
  EXPECT_GT(result.best.value(ParamId::kMaxClients), 150);
}

TEST(Search, RejectsBadSampleCount) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  SearchOptions opt;
  opt.samples_per_eval = 0;
  EXPECT_THROW(find_best_configuration(env, opt), std::invalid_argument);
}

}  // namespace
}  // namespace rac::core
