#include "core/reward.hpp"

#include <gtest/gtest.h>

namespace rac::core {
namespace {

TEST(Reward, SlaBoundaryIsZero) {
  const SlaSpec sla{1000.0};
  EXPECT_DOUBLE_EQ(reward_from_response(sla, 1000.0), 0.0);
}

TEST(Reward, FasterThanSlaIsPositive) {
  const SlaSpec sla{1000.0};
  EXPECT_DOUBLE_EQ(reward_from_response(sla, 250.0), 0.75);
  EXPECT_DOUBLE_EQ(reward_from_response(sla, 0.0), 1.0);
}

TEST(Reward, SlowerThanSlaIsNegativePenalty) {
  const SlaSpec sla{1000.0};
  EXPECT_DOUBLE_EQ(reward_from_response(sla, 3000.0), -2.0);
}

TEST(Reward, MonotoneDecreasingInResponseTime) {
  const SlaSpec sla{800.0};
  double prev = reward_from_response(sla, 0.0);
  for (double rt = 100.0; rt <= 5000.0; rt += 100.0) {
    const double r = reward_from_response(sla, rt);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Reward, InverseMappingRoundTrips) {
  const SlaSpec sla{1234.0};
  for (double rt : {10.0, 500.0, 1234.0, 9999.0}) {
    EXPECT_NEAR(response_from_reward(sla, reward_from_response(sla, rt)), rt,
                1e-9);
  }
}

}  // namespace
}  // namespace rac::core
