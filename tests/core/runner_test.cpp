#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "baselines/static_agent.hpp"
#include "env/analytic_env.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

AnalyticEnvOptions quiet_env() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

TEST(Runner, RecordsEveryIteration) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const auto trace = run_agent(env, agent, {}, 10);
  EXPECT_EQ(trace.agent, "static-default");
  ASSERT_EQ(trace.records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trace.records[static_cast<std::size_t>(i)].iteration, i);
    EXPECT_GT(trace.records[static_cast<std::size_t>(i)].response_ms, 0.0);
    EXPECT_EQ(trace.records[static_cast<std::size_t>(i)].configuration,
              Configuration::defaults());
  }
}

TEST(Runner, AppliesScheduleAtRequestedIterations) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {5, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  const auto trace = run_agent(env, agent, schedule, 10);
  EXPECT_EQ(trace.records[4].context.level, VmLevel::kLevel1);
  EXPECT_EQ(trace.records[5].context.level, VmLevel::kLevel3);
  // The heavier context must be visibly slower.
  EXPECT_GT(trace.records[9].response_ms, 2.0 * trace.records[0].response_ms);
}

TEST(Runner, RejectsUnsortedSchedule) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule out_of_order = {
      {5, {MixType::kShopping, VmLevel::kLevel1}},
      {2, {MixType::kOrdering, VmLevel::kLevel1}},
  };
  EXPECT_THROW(run_agent(env, agent, out_of_order, 10), std::invalid_argument);
}

TEST(Runner, RejectsDuplicateScheduleStarts) {
  // Two entries at the same iteration: only one can win, so the schedule
  // is ambiguous and must be rejected, not silently resolved.
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule duplicate = {
      {5, {MixType::kShopping, VmLevel::kLevel1}},
      {5, {MixType::kOrdering, VmLevel::kLevel1}},
  };
  EXPECT_THROW(run_agent(env, agent, duplicate, 10), std::invalid_argument);
}

TEST(Runner, RejectsNegativeScheduleStart) {
  // The fleet layer feeds thousands of generated schedules through here; a
  // negative start would be skipped by the fast-forward loop and its
  // context applied as if it shadowed iteration 0 -- reject it instead.
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule negative = {
      {-1, {MixType::kShopping, VmLevel::kLevel1}},
      {5, {MixType::kOrdering, VmLevel::kLevel1}},
  };
  EXPECT_THROW(run_agent(env, agent, negative, 10), std::invalid_argument);
}

TEST(AgentTrace, MeanOverRanges) {
  AgentTrace trace;
  for (int i = 0; i < 6; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = 100.0 * (i + 1);
    trace.records.push_back(r);
  }
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(), 350.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(0, 3), 200.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(3), 500.0);
}

// An empty or inverted range has no mean: the result is quiet NaN, never a
// fabricated 0 that would dilute a caller's average of per-segment means.
TEST(AgentTrace, MeanOverEmptyOrInvertedRangeIsNaN) {
  AgentTrace trace;
  for (int i = 0; i < 6; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = 100.0 * (i + 1);
    trace.records.push_back(r);
  }
  EXPECT_TRUE(std::isnan(trace.mean_response_ms(4, 4)));   // empty
  EXPECT_TRUE(std::isnan(trace.mean_response_ms(5, 2)));   // inverted
  EXPECT_TRUE(std::isnan(trace.mean_response_ms(6)));      // from == size
  EXPECT_TRUE(std::isnan(trace.mean_response_ms(99, -1))); // from > size
  EXPECT_TRUE(std::isnan(trace.mean_response_ms(-5, 0)));  // clamps to [0,0)
  // One-record ranges at both edges still have a mean.
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(5, 6), 600.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(5, 99), 600.0);  // to clamps down
}

TEST(AgentTrace, SettledIterationDetectsStabilization) {
  AgentTrace trace;
  // 10 wild iterations, then flat.
  for (int i = 0; i < 30; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i < 10 ? (i % 2 == 0 ? 100.0 : 900.0) : 200.0;
    trace.records.push_back(r);
  }
  const int settled = trace.settled_iteration(0, -1, 5, 0.25);
  EXPECT_GE(settled, 9);
  EXPECT_LE(settled, 12);
}

TEST(AgentTrace, NeverSettlingReturnsMinusOne) {
  AgentTrace trace;
  for (int i = 0; i < 30; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i % 2 == 0 ? 100.0 : 900.0;
    trace.records.push_back(r);
  }
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25), -1);
}

TEST(AgentTrace, SettledIterationOnEmptyTrace) {
  const AgentTrace trace;
  EXPECT_EQ(trace.settled_iteration(0), -1);
  EXPECT_EQ(trace.settled_iteration(0, -1), -1);
  EXPECT_EQ(trace.settled_iteration(5, 10), -1);
  EXPECT_TRUE(std::isnan(trace.mean_response_ms()));
}

TEST(AgentTrace, SettledIterationToMinusOneMeansEndOfTrace) {
  AgentTrace trace;
  for (int i = 0; i < 20; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i < 5 ? 900.0 : 200.0;
    trace.records.push_back(r);
  }
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25),
            trace.settled_iteration(0, 20, 5, 0.25));
  // A window that never fits in the range cannot settle.
  EXPECT_EQ(trace.settled_iteration(0, 3, 5, 0.25), -1);
  // from beyond the records: nothing to settle.
  EXPECT_EQ(trace.settled_iteration(25, -1, 5, 0.25), -1);
}

// Regression (PR 5): a non-finite response time folded into the prefix
// sums made every later window mean NaN, and the `!(mean > 0 && ...)`
// comparison then counted those positions as stable -- so a trace
// poisoned by one bad sensor reading "settled" immediately after it.
TEST(AgentTrace, NonFiniteSampleCannotSettleOrPoisonLaterWindows) {
  AgentTrace trace;
  for (int i = 0; i < 30; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i < 10 ? (i % 2 == 0 ? 100.0 : 900.0) : 200.0;
    trace.records.push_back(r);
  }
  trace.records[12].response_ms = std::numeric_limits<double>::quiet_NaN();
  const int settled = trace.settled_iteration(0, -1, 5, 0.25);
  // Settles only once every trailing window excludes the NaN at 12.
  EXPECT_EQ(settled, 13);

  trace.records[12].response_ms = std::numeric_limits<double>::infinity();
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25), 13);

  // A NaN in the last window means no candidate is ever stable.
  trace.records[29].response_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25), -1);
}

// Direct transliteration of settled_iteration's documented contract
// (O(n^2 * window)); the shipped implementation is the O(n * window)
// prefix-sum rewrite and must agree everywhere.
int settled_naive(const AgentTrace& t, int from, int to, int window,
                  double tolerance) {
  const int n = to < 0 ? static_cast<int>(t.records.size())
                       : std::min(to, static_cast<int>(t.records.size()));
  const int first = std::max(from, 0);
  if (window < 1 || first + window > n) return -1;
  for (int candidate = first; candidate + window <= n; ++candidate) {
    bool stable = true;
    for (int i = candidate; stable && i < n; ++i) {
      const int lo = std::max(candidate, i - window + 1);
      double mean = 0.0;
      for (int j = lo; j <= i; ++j) {
        mean += t.records[static_cast<std::size_t>(j)].response_ms;
      }
      mean /= static_cast<double>(i - lo + 1);
      const double rt = t.records[static_cast<std::size_t>(i)].response_ms;
      if (mean > 0.0 && std::abs(rt - mean) / mean > tolerance) {
        stable = false;
      }
    }
    if (stable) return candidate;
  }
  return -1;
}

AgentTrace trace_from(const std::vector<double>& responses) {
  AgentTrace trace;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    IterationRecord r;
    r.iteration = static_cast<int>(i);
    r.response_ms = responses[i];
    trace.records.push_back(r);
  }
  return trace;
}

TEST(AgentTrace, SettledIterationMatchesNaiveReferenceOnRandomTraces) {
  util::Rng rng(97);
  for (int round = 0; round < 40; ++round) {
    std::vector<double> responses;
    const int n = rng.uniform_int(0, 50);
    const int noisy_prefix = n == 0 ? 0 : rng.uniform_int(0, n);
    for (int i = 0; i < n; ++i) {
      // Wild prefix, then a noisy plateau -- plus occasional pure noise.
      const double base = i < noisy_prefix ? rng.uniform(50.0, 950.0)
                                           : 200.0 + rng.uniform(-40.0, 40.0);
      responses.push_back(base);
    }
    const AgentTrace trace = trace_from(responses);
    for (const int window : {1, 2, 5, 8}) {
      for (const int from : {0, 3, n / 2}) {
        for (const int to : {-1, n / 2, n}) {
          EXPECT_EQ(trace.settled_iteration(from, to, window, 0.25),
                    settled_naive(trace, from, to, window, 0.25))
              << "n=" << n << " window=" << window << " from=" << from
              << " to=" << to;
        }
      }
    }
  }
}

TEST(AgentTrace, SettledIterationMatchesNaiveOnStepTrace) {
  std::vector<double> responses;
  for (int i = 0; i < 40; ++i) {
    responses.push_back(i < 12 ? (i % 2 == 0 ? 100.0 : 900.0) : 250.0);
  }
  const AgentTrace trace = trace_from(responses);
  for (int from = 0; from < 40; from += 7) {
    for (const int window : {1, 3, 5, 10}) {
      EXPECT_EQ(trace.settled_iteration(from, -1, window, 0.25),
                settled_naive(trace, from, -1, window, 0.25));
    }
  }
}

TEST(Runner, RejectsMalformedCheckpointAndResumeOptions) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  RunOptions bad;
  bad.checkpoint_every = 5;  // no checkpoint_path
  EXPECT_THROW(run_agent(env, agent, {}, 10, bad), std::invalid_argument);
  RunOptions negative;
  negative.checkpoint_every = -1;
  EXPECT_THROW(run_agent(env, agent, {}, 10, negative),
               std::invalid_argument);
  RunOptions early;
  early.start_iteration = -1;
  EXPECT_THROW(run_agent(env, agent, {}, 10, early), std::invalid_argument);
  RunOptions late;
  late.start_iteration = 11;
  EXPECT_THROW(run_agent(env, agent, {}, 10, late), std::invalid_argument);
}

TEST(Runner, CheckpointingRejectsAgentsWithoutSaveState) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;  // default save_state: unsupported
  RunOptions options;
  options.checkpoint_every = 1;
  options.checkpoint_path =
      ::testing::TempDir() + "/rac_runner_nosave.rac";
  EXPECT_THROW(run_agent(env, agent, {}, 3, options), std::invalid_argument);
}

TEST(Runner, StartIterationResumesNumberingAndSchedule) {
  // A resumed run's records continue the absolute numbering, and the
  // schedule entry shadowing the resume point is applied up front.
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {4, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  RunOptions resume;
  resume.start_iteration = 6;
  const auto trace = run_agent(env, agent, schedule, 10, resume);
  ASSERT_EQ(trace.records.size(), 4u);
  EXPECT_EQ(trace.records.front().iteration, 6);
  EXPECT_EQ(trace.records.back().iteration, 9);
  EXPECT_EQ(trace.records.front().context.level, VmLevel::kLevel3);
  EXPECT_EQ(trace.records.front().context.mix, MixType::kOrdering);
}

TEST(Runner, EmitsOneTraceEventPerIteration) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  obs::MemoryTraceSink sink;
  RunOptions options;
  options.sink = &sink;
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {4, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  const auto trace = run_agent(env, agent, schedule, 8, options);

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto& event = events[static_cast<std::size_t>(i)];
    const auto& record = trace.records[static_cast<std::size_t>(i)];
    EXPECT_EQ(event.iteration, i);
    EXPECT_EQ(event.agent, "static-default");
    const auto& values = record.configuration.values();
    EXPECT_EQ(event.state, std::vector<int>(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(event.response_ms, record.response_ms);
    EXPECT_DOUBLE_EQ(event.throughput_rps, record.throughput_rps);
    EXPECT_EQ(event.context, record.context.name());
  }
  EXPECT_EQ(events[3].context,
            (SystemContext{MixType::kShopping, VmLevel::kLevel1}.name()));
  EXPECT_EQ(events[4].context,
            (SystemContext{MixType::kOrdering, VmLevel::kLevel3}.name()));
}

TEST(Runner, NullSinkRunsWithoutTracing) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  RunOptions options;  // sink stays nullptr
  const auto trace = run_agent(env, agent, {}, 5, options);
  EXPECT_EQ(trace.records.size(), 5u);
}

}  // namespace
}  // namespace rac::core
