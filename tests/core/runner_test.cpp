#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "baselines/static_agent.hpp"
#include "env/analytic_env.hpp"
#include "obs/trace.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

AnalyticEnvOptions quiet_env() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

TEST(Runner, RecordsEveryIteration) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const auto trace = run_agent(env, agent, {}, 10);
  EXPECT_EQ(trace.agent, "static-default");
  ASSERT_EQ(trace.records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(trace.records[static_cast<std::size_t>(i)].iteration, i);
    EXPECT_GT(trace.records[static_cast<std::size_t>(i)].response_ms, 0.0);
    EXPECT_EQ(trace.records[static_cast<std::size_t>(i)].configuration,
              Configuration::defaults());
  }
}

TEST(Runner, AppliesScheduleAtRequestedIterations) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {5, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  const auto trace = run_agent(env, agent, schedule, 10);
  EXPECT_EQ(trace.records[4].context.level, VmLevel::kLevel1);
  EXPECT_EQ(trace.records[5].context.level, VmLevel::kLevel3);
  // The heavier context must be visibly slower.
  EXPECT_GT(trace.records[9].response_ms, 2.0 * trace.records[0].response_ms);
}

TEST(Runner, RejectsUnsortedSchedule) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  const ContextSchedule schedule = {
      {5, {MixType::kShopping, VmLevel::kLevel1}},
      {5, {MixType::kOrdering, VmLevel::kLevel1}},
  };
  EXPECT_THROW(run_agent(env, agent, schedule, 10), std::invalid_argument);
}

TEST(AgentTrace, MeanOverRanges) {
  AgentTrace trace;
  for (int i = 0; i < 6; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = 100.0 * (i + 1);
    trace.records.push_back(r);
  }
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(), 350.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(0, 3), 200.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(3), 500.0);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(4, 4), 0.0);
}

TEST(AgentTrace, SettledIterationDetectsStabilization) {
  AgentTrace trace;
  // 10 wild iterations, then flat.
  for (int i = 0; i < 30; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i < 10 ? (i % 2 == 0 ? 100.0 : 900.0) : 200.0;
    trace.records.push_back(r);
  }
  const int settled = trace.settled_iteration(0, -1, 5, 0.25);
  EXPECT_GE(settled, 9);
  EXPECT_LE(settled, 12);
}

TEST(AgentTrace, NeverSettlingReturnsMinusOne) {
  AgentTrace trace;
  for (int i = 0; i < 30; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i % 2 == 0 ? 100.0 : 900.0;
    trace.records.push_back(r);
  }
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25), -1);
}

TEST(AgentTrace, SettledIterationOnEmptyTrace) {
  const AgentTrace trace;
  EXPECT_EQ(trace.settled_iteration(0), -1);
  EXPECT_EQ(trace.settled_iteration(0, -1), -1);
  EXPECT_EQ(trace.settled_iteration(5, 10), -1);
  EXPECT_DOUBLE_EQ(trace.mean_response_ms(), 0.0);
}

TEST(AgentTrace, SettledIterationToMinusOneMeansEndOfTrace) {
  AgentTrace trace;
  for (int i = 0; i < 20; ++i) {
    IterationRecord r;
    r.iteration = i;
    r.response_ms = i < 5 ? 900.0 : 200.0;
    trace.records.push_back(r);
  }
  EXPECT_EQ(trace.settled_iteration(0, -1, 5, 0.25),
            trace.settled_iteration(0, 20, 5, 0.25));
  // A window that never fits in the range cannot settle.
  EXPECT_EQ(trace.settled_iteration(0, 3, 5, 0.25), -1);
  // from beyond the records: nothing to settle.
  EXPECT_EQ(trace.settled_iteration(25, -1, 5, 0.25), -1);
}

TEST(Runner, EmitsOneTraceEventPerIteration) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  obs::MemoryTraceSink sink;
  RunOptions options;
  options.sink = &sink;
  const ContextSchedule schedule = {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {4, {MixType::kOrdering, VmLevel::kLevel3}},
  };
  const auto trace = run_agent(env, agent, schedule, 8, options);

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto& event = events[static_cast<std::size_t>(i)];
    const auto& record = trace.records[static_cast<std::size_t>(i)];
    EXPECT_EQ(event.iteration, i);
    EXPECT_EQ(event.agent, "static-default");
    const auto& values = record.configuration.values();
    EXPECT_EQ(event.state, std::vector<int>(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(event.response_ms, record.response_ms);
    EXPECT_DOUBLE_EQ(event.throughput_rps, record.throughput_rps);
    EXPECT_EQ(event.context, record.context.name());
  }
  EXPECT_EQ(events[3].context,
            (SystemContext{MixType::kShopping, VmLevel::kLevel1}.name()));
  EXPECT_EQ(events[4].context,
            (SystemContext{MixType::kOrdering, VmLevel::kLevel3}.name()));
}

TEST(Runner, NullSinkRunsWithoutTracing) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  baselines::StaticDefaultAgent agent;
  RunOptions options;  // sink stays nullptr
  const auto trace = run_agent(env, agent, {}, 5, options);
  EXPECT_EQ(trace.records.size(), 5u);
}

}  // namespace
}  // namespace rac::core
