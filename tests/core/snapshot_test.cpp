#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/policy_library.hpp"
#include "core/rac_agent.hpp"
#include "env/context.hpp"
#include "util/lineio.hpp"
#include "util/rng.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using config::ParamId;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

// A snapshot with every field set to a distinctive, non-default value.
AgentSnapshot sample_snapshot() {
  AgentSnapshot s;
  s.sla_reference_response_ms = 750.0;
  s.online_epsilon = 0.07;
  s.online_td = {0.2, 0.8, 0.15, 1e-4, 6, 25};
  s.violation_window = 8;
  s.violation_threshold = 0.4;
  s.violation_consecutive_limit = 4;
  s.violation_min_history = 2;
  s.online_learning = false;
  s.adaptive_policy_switching = false;
  s.seed = 4242;
  s.library_size = 3;
  s.experience_blend = 0.35;
  s.has_active_policy = true;
  s.active_policy = 2;
  s.active_policy_context = "ordering/Level-3";
  util::Rng rng(77);
  Configuration visited;
  visited.set(ParamId::kMaxClients, 250);
  s.qtable.set_default_q(-0.25);
  s.qtable.set_q(visited, config::Action(3), 1.0 / 3.0);
  s.experience.push_back({Configuration{}, {123.456, 4}});
  s.experience.push_back({visited, {88.25, 1}});
  s.detector_history = {100.0, 120.0, 95.5};
  s.detector_consecutive = 2;
  s.detector_last_violation = true;
  rng.normal();  // populate the Box-Muller cache
  s.rng = rng.state();
  s.current = visited;
  s.first_decide = false;
  s.policy_switches = 5;
  s.last_action_id = 7;
  s.last_explored = true;
  s.last_q_value = -1.5;
  s.last_policy_switched = true;
  s.last_reward = 0.625;
  s.calibration_initialized = true;
  s.calibration_value = 0.125;
  return s;
}

std::string serialized(const AgentSnapshot& s) {
  std::ostringstream os;
  save_agent_snapshot(os, s);
  return os.str();
}

TEST(AgentSnapshotIo, RoundTripPreservesEveryField) {
  const AgentSnapshot s = sample_snapshot();
  std::istringstream is(serialized(s));
  const AgentSnapshot r = load_agent_snapshot(is);

  EXPECT_EQ(r.sla_reference_response_ms, s.sla_reference_response_ms);
  EXPECT_EQ(r.online_epsilon, s.online_epsilon);
  EXPECT_EQ(r.online_td.alpha, s.online_td.alpha);
  EXPECT_EQ(r.online_td.gamma, s.online_td.gamma);
  EXPECT_EQ(r.online_td.epsilon, s.online_td.epsilon);
  EXPECT_EQ(r.online_td.theta, s.online_td.theta);
  EXPECT_EQ(r.online_td.trajectory_limit, s.online_td.trajectory_limit);
  EXPECT_EQ(r.online_td.max_sweeps, s.online_td.max_sweeps);
  EXPECT_EQ(r.violation_window, s.violation_window);
  EXPECT_EQ(r.violation_threshold, s.violation_threshold);
  EXPECT_EQ(r.violation_consecutive_limit, s.violation_consecutive_limit);
  EXPECT_EQ(r.violation_min_history, s.violation_min_history);
  EXPECT_EQ(r.online_learning, s.online_learning);
  EXPECT_EQ(r.adaptive_policy_switching, s.adaptive_policy_switching);
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_EQ(r.library_size, s.library_size);
  EXPECT_EQ(r.experience_blend, s.experience_blend);
  EXPECT_EQ(r.has_active_policy, s.has_active_policy);
  EXPECT_EQ(r.active_policy, s.active_policy);
  EXPECT_EQ(r.active_policy_context, s.active_policy_context);
  EXPECT_EQ(r.qtable.size(), s.qtable.size());
  EXPECT_EQ(r.qtable.default_q(), s.qtable.default_q());
  ASSERT_EQ(r.experience.size(), s.experience.size());
  for (std::size_t i = 0; i < s.experience.size(); ++i) {
    EXPECT_EQ(r.experience[i].configuration, s.experience[i].configuration);
    EXPECT_EQ(r.experience[i].observation.response_ms,
              s.experience[i].observation.response_ms);
    EXPECT_EQ(r.experience[i].observation.count,
              s.experience[i].observation.count);
  }
  EXPECT_EQ(r.detector_history, s.detector_history);
  EXPECT_EQ(r.detector_consecutive, s.detector_consecutive);
  EXPECT_EQ(r.detector_last_violation, s.detector_last_violation);
  EXPECT_EQ(r.rng.words, s.rng.words);
  EXPECT_EQ(r.rng.has_cached_normal, s.rng.has_cached_normal);
  EXPECT_EQ(r.rng.cached_normal, s.rng.cached_normal);
  EXPECT_EQ(r.current, s.current);
  EXPECT_EQ(r.first_decide, s.first_decide);
  EXPECT_EQ(r.policy_switches, s.policy_switches);
  EXPECT_EQ(r.last_action_id, s.last_action_id);
  EXPECT_EQ(r.last_explored, s.last_explored);
  EXPECT_EQ(r.last_q_value, s.last_q_value);
  EXPECT_EQ(r.last_policy_switched, s.last_policy_switched);
  EXPECT_EQ(r.last_reward, s.last_reward);
  EXPECT_EQ(r.calibration_initialized, s.calibration_initialized);
  EXPECT_EQ(r.calibration_value, s.calibration_value);
}

TEST(AgentSnapshotIo, NoActivePolicyRoundTrips) {
  AgentSnapshot s;  // defaults: no active policy, empty everything
  s.library_size = 0;
  std::istringstream is(serialized(s));
  const AgentSnapshot r = load_agent_snapshot(is);
  EXPECT_FALSE(r.has_active_policy);
  EXPECT_TRUE(r.active_policy_context.empty());
  EXPECT_TRUE(r.experience.empty());
  EXPECT_TRUE(r.detector_history.empty());
}

TEST(AgentSnapshotIo, RejectsForeignMagicAndVersion) {
  std::istringstream foreign("not-a-snapshot v1\n");
  EXPECT_THROW(load_agent_snapshot(foreign), std::runtime_error);
  std::istringstream unsupported("rac-agent-snapshot v9\n");
  EXPECT_THROW(load_agent_snapshot(unsupported), std::runtime_error);
}

TEST(AgentSnapshotIo, RejectsTruncatedInput) {
  const std::string text = serialized(sample_snapshot());
  for (const double fraction : {0.1, 0.5, 0.9}) {
    std::istringstream is(
        text.substr(0, static_cast<std::size_t>(text.size() * fraction)));
    EXPECT_THROW(load_agent_snapshot(is), std::runtime_error) << fraction;
  }
}

TEST(AgentSnapshotIo, RejectsCommaDecimalValue) {
  // The locale bug this PR removes: "1,5" must be malformed, not "1".
  std::string text = serialized(sample_snapshot());
  const std::string key = "online_epsilon ";
  const std::size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos + key.size(), eol - pos - key.size(), "1,5");
  std::istringstream is(text);
  EXPECT_THROW(load_agent_snapshot(is), std::runtime_error);
}

TEST(AgentSnapshotIo, RejectsCorruptFlagsAndRanges) {
  // Boolean flag outside {0, 1}.
  std::string text = serialized(sample_snapshot());
  const std::size_t flag = text.find("first_decide 0");
  ASSERT_NE(flag, std::string::npos);
  std::string bad_flag = text;
  bad_flag.replace(flag, std::string("first_decide 0").size(),
                   "first_decide 2");
  std::istringstream flag_is(bad_flag);
  EXPECT_THROW(load_agent_snapshot(flag_is), std::runtime_error);

  // Action id outside the action set.
  const std::size_t sel = text.find("last_selection 7");
  ASSERT_NE(sel, std::string::npos);
  std::string bad_action = text;
  bad_action.replace(sel, std::string("last_selection 7").size(),
                     "last_selection 99");
  std::istringstream action_is(bad_action);
  EXPECT_THROW(load_agent_snapshot(action_is), std::runtime_error);

  // An active policy index must carry a context token.
  const std::size_t ap = text.find("active_policy 2 ordering/Level-3");
  ASSERT_NE(ap, std::string::npos);
  std::string bad_policy = text;
  bad_policy.replace(ap, std::string("active_policy 2 ordering/Level-3").size(),
                     "active_policy 2 -");
  std::istringstream policy_is(bad_policy);
  EXPECT_THROW(load_agent_snapshot(policy_is), std::runtime_error);
}

// --- checkpoint files -------------------------------------------------------

TEST(CheckpointIo, RoundTripPreservesOpaqueStateBytes) {
  const std::string path = ::testing::TempDir() + "/rac_checkpoint_rt.rac";
  RunCheckpoint original;
  original.completed_iterations = 17;
  // Deliberately awkward payload: newlines, token-like words, no trailer.
  original.agent_state = "line one\nend\nstates 3\n  spaced tokens ";
  write_checkpoint_file(path, original);
  const RunCheckpoint loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.completed_iterations, original.completed_iterations);
  EXPECT_EQ(loaded.agent_state, original.agent_state);
  std::remove(path.c_str());
}

TEST(CheckpointIo, TrafficCursorRoundTrips) {
  const std::string path = ::testing::TempDir() + "/rac_checkpoint_tc.rac";
  RunCheckpoint original;
  original.completed_iterations = 9;
  original.traffic_interval = 42;  // v2: mid-day traffic-model cursor
  original.agent_state = "state";
  write_checkpoint_file(path, original);
  const RunCheckpoint loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.traffic_interval, 42u);
  EXPECT_EQ(loaded.completed_iterations, 9u);
  std::remove(path.c_str());
}

TEST(CheckpointIo, V1FileLoadsWithZeroTrafficCursor) {
  // A pre-traffic checkpoint (v1, no "traffic" line) must keep loading;
  // the cursor defaults to 0 -- exactly what a run without a traffic
  // model had.
  const std::string path = ::testing::TempDir() + "/rac_checkpoint_v1.rac";
  util::atomic_write_file(
      path, "rac-checkpoint v1\ncompleted 7\nagent_state 6\nopaque\nend\n");
  const RunCheckpoint loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.completed_iterations, 7u);
  EXPECT_EQ(loaded.traffic_interval, 0u);
  EXPECT_EQ(loaded.agent_state, "opaque");
  std::remove(path.c_str());
}

TEST(CheckpointIo, MissingFileThrowsIosFailure) {
  EXPECT_THROW(load_checkpoint_file("/nonexistent/dir/cp.rac"),
               std::ios_base::failure);
}

TEST(CheckpointIo, RejectsTrailingGarbageAndTruncation) {
  const std::string path = ::testing::TempDir() + "/rac_checkpoint_bad.rac";
  RunCheckpoint checkpoint;
  checkpoint.completed_iterations = 3;
  checkpoint.agent_state = "opaque agent state";
  write_checkpoint_file(path, checkpoint);

  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  util::atomic_write_file(path, text + "extra\n");
  EXPECT_THROW(load_checkpoint_file(path), std::runtime_error);

  // A byte count larger than the remaining file is a truncated state.
  util::atomic_write_file(path, text.substr(0, text.size() - 10));
  EXPECT_THROW(load_checkpoint_file(path), std::runtime_error);
  std::remove(path.c_str());
}

// --- RacAgent::restore validation -------------------------------------------

InitialPolicyLibrary synthetic_library(const SystemContext& context) {
  InitialPolicy policy;
  policy.context = context;
  InitialPolicyLibrary library;
  library.add(policy);
  return library;
}

TEST(RacAgentRestore, RejectsHyperparameterDrift) {
  const RacOptions options;
  RacAgent donor(options, {});
  const AgentSnapshot snapshot = donor.snapshot();
  RacOptions drifted = options;
  drifted.online_epsilon = 0.2;
  RacAgent agent(drifted, {});
  EXPECT_THROW(agent.restore(snapshot), std::invalid_argument);
  // The same snapshot restores fine under matching options.
  RacAgent twin(options, {});
  EXPECT_NO_THROW(twin.restore(snapshot));
}

TEST(RacAgentRestore, RejectsLibrarySizeMismatch) {
  const RacOptions options;
  RacAgent donor(options, {});  // empty library
  const AgentSnapshot snapshot = donor.snapshot();
  RacAgent agent(options, synthetic_library(
                              {MixType::kShopping, VmLevel::kLevel1}));
  EXPECT_THROW(agent.restore(snapshot), std::invalid_argument);
}

TEST(RacAgentRestore, RejectsActivePolicyContextMismatch) {
  const RacOptions options;
  RacAgent donor(options, synthetic_library(
                              {MixType::kShopping, VmLevel::kLevel1}));
  const AgentSnapshot snapshot = donor.snapshot();
  ASSERT_TRUE(snapshot.has_active_policy);
  EXPECT_EQ(snapshot.active_policy_context, "shopping/Level-1");

  // Same library size, different context at the active index: the index
  // would silently point at the wrong policy after a library rebuild.
  RacAgent agent(options, synthetic_library(
                              {MixType::kOrdering, VmLevel::kLevel3}));
  EXPECT_THROW(agent.restore(snapshot), std::invalid_argument);
}

TEST(RacAgentRestore, FailedRestoreLeavesAgentUsable) {
  const RacOptions options;
  RacAgent agent(options, {});
  const AgentSnapshot before = agent.snapshot();
  AgentSnapshot corrupt = before;
  corrupt.detector_consecutive = 999;  // detector restore throws
  EXPECT_THROW(agent.restore(corrupt), std::invalid_argument);
  // State is untouched: a fresh snapshot still matches the original.
  const AgentSnapshot after = agent.snapshot();
  EXPECT_EQ(after.rng.words, before.rng.words);
  EXPECT_EQ(after.first_decide, before.first_decide);
}

}  // namespace
}  // namespace rac::core
