#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "env/analytic_env.hpp"

namespace rac::core {
namespace {

using config::ParamId;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::VmLevel;
using workload::MixType;

const SensitivityReport& shared_report() {
  static const SensitivityReport* report = [] {
    AnalyticEnvOptions opt;
    opt.noise_sigma = 0.0;
    static AnalyticEnv env({MixType::kOrdering, VmLevel::kLevel1}, opt);
    SensitivityOptions options;
    options.stride = 2;
    return new SensitivityReport(analyze_sensitivity(env, options));
  }();
  return *report;
}

TEST(Sensitivity, CoversEveryParameterOnce) {
  const auto& report = shared_report();
  EXPECT_EQ(report.ranked.size(), config::kNumParams);
  std::set<ParamId> seen;
  for (const auto& entry : report.ranked) seen.insert(entry.id);
  EXPECT_EQ(seen.size(), config::kNumParams);
  EXPECT_GT(report.evaluations, 0);
}

TEST(Sensitivity, RankedByDescendingImpact) {
  const auto& report = shared_report();
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_GE(report.ranked[i - 1].impact(), report.ranked[i].impact());
  }
}

TEST(Sensitivity, MaxClientsDominatesThisSubstrate) {
  // On a slot-starved system MaxClients commands by far the largest
  // response-time range -- the paper hand-picked it first for a reason.
  const auto& report = shared_report();
  EXPECT_EQ(report.ranked.front().id, ParamId::kMaxClients);
  EXPECT_GT(report.ranked.front().impact(), 1.0);
}

TEST(Sensitivity, KeepAliveIsPerformanceRelevant) {
  const auto& report = shared_report();
  for (const auto& entry : report.ranked) {
    if (entry.id == ParamId::kKeepAliveTimeout) {
      EXPECT_GT(entry.impact(), 0.1);
    }
  }
}

TEST(Sensitivity, SelectionThresholdFilters) {
  const auto& report = shared_report();
  const auto all = report.selected(0.0);
  EXPECT_EQ(all.size(), config::kNumParams);
  const auto major = report.selected(0.5);
  EXPECT_LT(major.size(), all.size());
  EXPECT_FALSE(major.empty());
  // Selected set respects the ranking order.
  EXPECT_EQ(major.front(), report.ranked.front().id);
}

TEST(Sensitivity, BoundsAreConsistent) {
  for (const auto& entry : shared_report().ranked) {
    EXPECT_GT(entry.min_response_ms, 0.0);
    EXPECT_GE(entry.max_response_ms, entry.min_response_ms);
    EXPECT_GE(entry.impact(), 0.0);
  }
}

TEST(Sensitivity, RejectsBadOptions) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, opt);
  SensitivityOptions bad;
  bad.samples_per_point = 0;
  EXPECT_THROW(analyze_sensitivity(env, bad), std::invalid_argument);
  bad = SensitivityOptions{};
  bad.stride = 0;
  EXPECT_THROW(analyze_sensitivity(env, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rac::core
