#include "core/policy_init.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/policy_library.hpp"
#include "env/analytic_env.hpp"
#include "rl/policy.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using config::ParamId;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

PolicyInitOptions fast_options() {
  PolicyInitOptions opt;
  opt.coarse_levels = 4;
  opt.offline_td.max_sweeps = 120;
  return opt;
}

AnalyticEnvOptions quiet_env() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

class PolicyInitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
    policy_ = new InitialPolicy(learn_initial_policy(env, fast_options()));
  }
  static void TearDownTestSuite() {
    delete policy_;
    policy_ = nullptr;
  }
  static const InitialPolicy* policy_;
};

const InitialPolicy* PolicyInitTest::policy_ = nullptr;

TEST_F(PolicyInitTest, RecordsContextAndFitsSurface) {
  EXPECT_EQ(policy_->context.mix, MixType::kShopping);
  EXPECT_TRUE(policy_->surface.fitted());
  EXPECT_GT(policy_->regression_r2, 0.5);
}

TEST_F(PolicyInitTest, BestSampledIsReasonable) {
  EXPECT_GT(policy_->best_sampled_response_ms, 0.0);
  // The coarse grid contains configurations far better than the default.
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  EXPECT_LT(policy_->best_sampled_response_ms,
            env.evaluate(Configuration{}).response_ms);
}

TEST_F(PolicyInitTest, PredictionsCorrelateWithTruth) {
  // On held-out (non-coarse) configurations the regression must at least
  // rank a starved configuration far above a tuned one.
  Configuration starved;
  starved.set(ParamId::kMaxClients, 75);
  Configuration tuned;
  tuned.set(ParamId::kMaxClients, 250);
  EXPECT_GT(policy_->predict_response_ms(starved),
            2.0 * policy_->predict_response_ms(tuned));
}

TEST_F(PolicyInitTest, PredictRewardConsistentWithResponse) {
  const Configuration c;
  EXPECT_DOUBLE_EQ(
      policy_->predict_reward(c),
      reward_from_response(policy_->sla, policy_->predict_response_ms(c)));
}

TEST_F(PolicyInitTest, QTableCoversDefaultAndCoarseStates) {
  EXPECT_TRUE(policy_->table.contains(Configuration::defaults()));
  EXPECT_GT(policy_->table.size(), 81u);
}

TEST_F(PolicyInitTest, GreedyWalkFromDefaultImprovesTruePerformance) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  Configuration s;
  const double start_rt = env.evaluate(s).response_ms;
  for (int i = 0; i < 25; ++i) {
    const auto a = policy_->table.best_action(s);
    if (a.is_keep()) break;
    s = config::ConfigSpace::apply(s, a);
  }
  const double end_rt = env.evaluate(s).response_ms;
  EXPECT_LT(end_rt, 0.6 * start_rt);
}

TEST(PolicyInit, RejectsBadSampleCount) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, quiet_env());
  PolicyInitOptions opt;
  opt.samples_per_config = 0;
  EXPECT_THROW(learn_initial_policy(env, opt), std::invalid_argument);
}

// --- library ----------------------------------------------------------------

TEST(PolicyLibrary, FindsExactContext) {
  InitialPolicyLibrary lib;
  InitialPolicy p1;
  p1.context = {MixType::kShopping, VmLevel::kLevel1};
  InitialPolicy p2;
  p2.context = {MixType::kOrdering, VmLevel::kLevel3};
  lib.add(p1);
  lib.add(p2);
  EXPECT_EQ(lib.find_context({MixType::kOrdering, VmLevel::kLevel3}), 1u);
  EXPECT_FALSE(
      lib.find_context({MixType::kBrowsing, VmLevel::kLevel2}).has_value());
}

TEST(PolicyLibrary, EmptyLibraryMatchesNothing) {
  const InitialPolicyLibrary lib;
  EXPECT_FALSE(lib.best_match(Configuration{}, 500.0).has_value());
  EXPECT_TRUE(lib.empty());
}

TEST(PolicyLibrary, BestMatchPicksPolicyExplainingMeasurement) {
  // Train two very different contexts; a measurement taken in one context
  // must match that context's policy.
  auto make = [](const SystemContext& ctx) {
    AnalyticEnv env(ctx, quiet_env());
    return learn_initial_policy(env, fast_options());
  };
  const SystemContext light{MixType::kShopping, VmLevel::kLevel1};
  const SystemContext heavy{MixType::kOrdering, VmLevel::kLevel3};
  InitialPolicyLibrary lib;
  lib.add(make(light));
  lib.add(make(heavy));

  AnalyticEnv light_env(light, quiet_env());
  AnalyticEnv heavy_env(heavy, quiet_env());
  const Configuration c;
  EXPECT_EQ(lib.best_match(c, light_env.evaluate(c).response_ms), 0u);
  EXPECT_EQ(lib.best_match(c, heavy_env.evaluate(c).response_ms), 1u);
}

// A policy whose surface predicts the same response everywhere: weights
// are all zero except the intercept, which carries log(response_ms).
InitialPolicy constant_policy(double response_ms) {
  InitialPolicy p;
  constexpr std::size_t dim = config::kNumParams;
  constexpr int degree = 2;
  constexpr std::size_t features =
      1 + static_cast<std::size_t>(degree) * dim + dim * (dim - 1) / 2;
  std::vector<double> weights(features, 0.0);
  weights[0] = std::log(response_ms);
  p.surface = util::QuadraticSurface::from_parts(
      util::LinearModel(std::move(weights)), dim, degree,
      std::vector<double>(dim, 0.0), std::vector<double>(dim, 1.0));
  return p;
}

TEST(PolicyLibrary, BestMatchDistinguishesSubMillisecondSurfaces) {
  // Regression: an earlier 1.0 ms floor in the match scoring (and a 0
  // lower bound on the surface exponent) collapsed every sub-millisecond
  // prediction and measurement to the same score, so the library "tied"
  // to policy 0 regardless of which surface explained the measurement.
  InitialPolicyLibrary lib;
  lib.add(constant_policy(0.2));
  lib.add(constant_policy(0.6));
  EXPECT_DOUBLE_EQ(lib.at(0).predict_response_ms(Configuration{}), 0.2);
  EXPECT_EQ(lib.best_match(Configuration{}, 0.6), 1u);
  EXPECT_EQ(lib.best_match(Configuration{}, 0.2), 0u);
}

TEST(PolicyLibrary, ExactScoreTiesResolveToLowestIndex) {
  InitialPolicyLibrary lib;
  lib.add(constant_policy(0.5));
  lib.add(constant_policy(0.5));
  lib.add(constant_policy(0.5));
  EXPECT_EQ(lib.best_match(Configuration{}, 123.0), 0u);
  EXPECT_EQ(lib.best_match(Configuration{}, 0.001), 0u);
}

TEST(PolicyLibrary, BuildLibraryTrainsEveryContext) {
  const std::vector<SystemContext> contexts = {
      {MixType::kShopping, VmLevel::kLevel1},
      {MixType::kOrdering, VmLevel::kLevel2},
  };
  const auto lib = build_library(
      contexts,
      [](const SystemContext& ctx) {
        return std::make_unique<AnalyticEnv>(ctx, quiet_env());
      },
      fast_options());
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.at(0).context, contexts[0]);
  EXPECT_EQ(lib.at(1).context, contexts[1]);
}

}  // namespace
}  // namespace rac::core
