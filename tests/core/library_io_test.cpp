#include "core/library_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/policy_init.hpp"
#include "env/analytic_env.hpp"
#include "util/lineio.hpp"

namespace rac::core {
namespace {

using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

InitialPolicyLibrary trained_library() {
  PolicyInitOptions init;
  init.offline_td.max_sweeps = 60;
  AnalyticEnvOptions env_options;
  env_options.noise_sigma = 0.0;
  InitialPolicyLibrary library;
  for (const SystemContext& context :
       {SystemContext{MixType::kShopping, VmLevel::kLevel1},
        SystemContext{MixType::kOrdering, VmLevel::kLevel3}}) {
    AnalyticEnv env(context, env_options);
    library.add(learn_initial_policy(env, init));
  }
  return library;
}

TEST(LibraryIo, RoundTripIsExactlyEqualPolicyByPolicy) {
  const InitialPolicyLibrary original = trained_library();
  std::stringstream stream;
  save_library(stream, original);
  const InitialPolicyLibrary loaded = load_library(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(exactly_equal(loaded.at(i), original.at(i))) << i;
  }
}

TEST(LibraryIo, OutputIsByteStable) {
  const InitialPolicyLibrary original = trained_library();
  std::stringstream first;
  save_library(first, original);
  std::stringstream reload(first.str());
  const InitialPolicyLibrary loaded = load_library(reload);
  std::stringstream second;
  save_library(second, loaded);
  EXPECT_EQ(second.str(), first.str());
}

TEST(LibraryIo, UnfittedSurfaceAndEmptyLibraryRoundTrip) {
  InitialPolicyLibrary with_unfitted;
  InitialPolicy bare;
  bare.context = {MixType::kBrowsing, VmLevel::kLevel2};
  with_unfitted.add(bare);  // default policy: unfitted surface, empty table
  std::stringstream stream;
  save_library(stream, with_unfitted);
  const InitialPolicyLibrary loaded = load_library(stream);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded.at(0).surface.fitted());
  EXPECT_TRUE(exactly_equal(loaded.at(0), with_unfitted.at(0)));

  const InitialPolicyLibrary empty;
  std::stringstream empty_stream;
  save_library(empty_stream, empty);
  EXPECT_EQ(load_library(empty_stream).size(), 0u);
}

TEST(LibraryIo, RejectsForeignMagicVersionAndDisorder) {
  std::istringstream foreign("something-else v1\n");
  EXPECT_THROW(load_library(foreign), std::runtime_error);
  std::istringstream unsupported("rac-policy-library v7\npolicies 0\nend\n");
  EXPECT_THROW(load_library(unsupported), std::runtime_error);

  // Policy indices must be ordered 0..n-1.
  InitialPolicyLibrary library;
  InitialPolicy policy;
  policy.context = {MixType::kShopping, VmLevel::kLevel1};
  library.add(policy);
  std::stringstream stream;
  save_library(stream, library);
  std::string text = stream.str();
  const std::size_t pos = text.find("policy 0\n");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "policy 1\n");
  std::istringstream disordered(text);
  EXPECT_THROW(load_library(disordered), std::runtime_error);
}

TEST(LibraryIo, RejectsUnknownContextAndBadSurface) {
  InitialPolicyLibrary library;
  InitialPolicy policy;
  policy.context = {MixType::kShopping, VmLevel::kLevel1};
  library.add(policy);
  std::stringstream stream;
  save_library(stream, library);
  const std::string text = stream.str();

  std::string bad_context = text;
  const std::size_t ctx = bad_context.find("context shopping/Level-1");
  ASSERT_NE(ctx, std::string::npos);
  bad_context.replace(ctx, std::string("context shopping/Level-1").size(),
                      "context surfing/Level-1\n");
  std::istringstream ctx_is(bad_context);
  EXPECT_THROW(load_library(ctx_is), std::runtime_error);

  // A fitted surface whose invariants from_parts rejects (zero scale).
  std::string bad_surface = text;
  const std::size_t surf = bad_surface.find("surface unfitted");
  ASSERT_NE(surf, std::string::npos);
  bad_surface.replace(surf, std::string("surface unfitted").size(),
                      "surface 1 2\nweights 3 0p+0 0p+0 0p+0\n"
                      "means 0p+0\nscales 0p+0");
  std::istringstream surf_is(bad_surface);
  EXPECT_THROW(load_library(surf_is), std::runtime_error);
}

TEST(LibraryIo, FileRoundTripAndTrailingGarbageRejection) {
  InitialPolicyLibrary library;
  InitialPolicy policy;
  policy.context = {MixType::kOrdering, VmLevel::kLevel2};
  library.add(policy);
  const std::string path = ::testing::TempDir() + "/rac_library_test.rac";
  save_library_file(path, library);
  const InitialPolicyLibrary loaded = load_library_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(exactly_equal(loaded.at(0), library.at(0)));

  {
    std::ofstream os(path, std::ios::app);
    os << "garbage\n";
  }
  EXPECT_THROW(load_library_file(path), std::runtime_error);
  std::remove(path.c_str());

  EXPECT_THROW(load_library_file("/nonexistent/dir/library.rac"),
               std::ios_base::failure);
}

}  // namespace
}  // namespace rac::core
