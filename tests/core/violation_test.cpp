#include "core/violation.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace rac::core {
namespace {

TEST(ViolationDetector, SteadySignalNeverFires) {
  ViolationDetector d;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(d.observe(500.0));
  }
  EXPECT_EQ(d.consecutive_violations(), 0);
}

TEST(ViolationDetector, ModerateNoiseDoesNotFire) {
  // sigma ~8% of the mean: pvar rarely exceeds the 0.3 threshold, and
  // never five times in a row.
  ViolationDetector d;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(d.observe(500.0 * rng.lognormal_unit(0.08)));
  }
}

TEST(ViolationDetector, StepChangeFiresAfterSthrConsecutive) {
  ViolationOptions opt;  // n=10, v_thr=0.3, s_thr=5
  ViolationDetector d(opt);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(d.observe(300.0));
  // A 3x jump: violations accumulate; the 5th consecutive one fires.
  int fired_at = -1;
  for (int i = 0; i < 8; ++i) {
    if (d.observe(900.0)) {
      fired_at = i;
      break;
    }
  }
  EXPECT_EQ(fired_at, 4);  // 5th observation (0-indexed 4)
}

TEST(ViolationDetector, BriefSpikeDoesNotFire) {
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(d.observe(300.0));
  // Two bad intervals, then recovery: never 5 consecutive.
  EXPECT_FALSE(d.observe(900.0));
  EXPECT_FALSE(d.observe(900.0));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(d.observe(300.0)) << i;
  }
}

TEST(ViolationDetector, ResetsAfterFiring) {
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) d.observe(300.0);
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = d.observe(1200.0);
  ASSERT_TRUE(fired);
  // Fresh history: the new (high) level is normal now.
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(d.observe(1200.0));
  }
}

TEST(ViolationDetector, NeedsMinimumHistoryBeforeJudging) {
  ViolationDetector d;
  // Immediately alternating wildly: first min_history observations can
  // never fire.
  EXPECT_FALSE(d.observe(100.0));
  EXPECT_FALSE(d.observe(10000.0));
  EXPECT_FALSE(d.observe(100.0));
}

TEST(ViolationDetector, DropInResponseTimeAlsoCountsAsChange) {
  // |rt - avg| is symmetric: a sudden improvement is also a context change
  // (e.g. VM upgraded).
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) d.observe(2000.0);
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = d.observe(400.0);
  EXPECT_TRUE(fired);
}

TEST(ViolationDetector, LastWasViolationExposed) {
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) d.observe(300.0);
  d.observe(900.0);
  EXPECT_TRUE(d.last_was_violation());
  d.observe(300.0);
  EXPECT_FALSE(d.last_was_violation());
}

TEST(ViolationDetector, RejectsBadOptions) {
  ViolationOptions bad;
  bad.window = 0;
  EXPECT_THROW(ViolationDetector{bad}, std::invalid_argument);
  bad = ViolationOptions{};
  bad.threshold = 0.0;
  EXPECT_THROW(ViolationDetector{bad}, std::invalid_argument);
  bad = ViolationOptions{};
  bad.consecutive_limit = 0;
  EXPECT_THROW(ViolationDetector{bad}, std::invalid_argument);
}

// Regression: min_history > window used to be accepted, but the sliding
// window never holds more than `window` entries, so every observation
// stayed in the warm-up branch and detection silently never fired.
TEST(ViolationDetector, RejectsMinHistoryLargerThanWindow) {
  ViolationOptions bad;
  bad.window = 5;
  bad.min_history = 6;
  EXPECT_THROW(ViolationDetector{bad}, std::invalid_argument);
}

// Regression (PR 5): pvar = |rt - avg| / avg. A non-finite response used
// to flow straight into the sliding window (poisoning the mean so
// detection never fired again), and a window of zeros made pvar Inf/NaN.
TEST(ViolationDetector, NonFiniteInputIsCountedAndDropped) {
  obs::Registry registry;
  ViolationOptions opt;
  opt.registry = &registry;
  ViolationDetector d(opt);
  for (int i = 0; i < 10; ++i) d.observe(300.0);

  EXPECT_FALSE(d.observe(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(d.observe(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(d.observe(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(registry.counter("core.violation.rejected").value(), 3u);

  // The window and streak are untouched: detection still works.
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = d.observe(1500.0);
  EXPECT_TRUE(fired);
}

TEST(ViolationDetector, NegativeInputIsCountedAndDropped) {
  obs::Registry registry;
  ViolationOptions opt;
  opt.registry = &registry;
  ViolationDetector d(opt);
  for (int i = 0; i < 10; ++i) d.observe(300.0);
  EXPECT_FALSE(d.observe(-5.0));
  EXPECT_EQ(registry.counter("core.violation.rejected").value(), 1u);
  EXPECT_FALSE(d.last_was_violation());
}

TEST(ViolationDetector, RejectedSampleDoesNotResetAViolationStreak) {
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) d.observe(300.0);
  EXPECT_FALSE(d.observe(900.0));
  EXPECT_FALSE(d.observe(900.0));
  const int streak = d.consecutive_violations();
  EXPECT_EQ(streak, 2);
  // Garbage in between neither extends nor resets the streak.
  EXPECT_FALSE(d.observe(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(d.consecutive_violations(), streak);
  EXPECT_TRUE(d.last_was_violation());
}

TEST(ViolationDetector, ZeroMeanWindowDoesNotProduceNonFinitePvar) {
  // An all-zero warm-up makes the window mean 0; the floored denominator
  // must turn a later (positive) sample into a plain violation rather
  // than an Inf/NaN pvar.
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(d.observe(0.0));
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = d.observe(400.0);
  EXPECT_TRUE(fired);
}

TEST(ViolationDetector, ZeroInputAgainstPositiveWindowIsAViolation) {
  ViolationDetector d;
  for (int i = 0; i < 10; ++i) d.observe(300.0);
  d.observe(0.0);  // |0 - 300| / 300 = 1.0 >= 0.3
  EXPECT_TRUE(d.last_was_violation());
}

TEST(ViolationDetector, MinHistoryEqualToWindowStillFires) {
  ViolationOptions opt;  // paper constants: n=10, v_thr=0.3, s_thr=5
  opt.min_history = opt.window;  // boundary: reachable exactly when full
  ViolationDetector d(opt);
  for (int i = 0; i < 15; ++i) EXPECT_FALSE(d.observe(300.0));
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = d.observe(1500.0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace rac::core
