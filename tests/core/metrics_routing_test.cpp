// Regression tests for telemetry routing. The component metrics in the TD
// learner, the RAC agent, the violation detector and the policy
// initializer used to be function-local statics pinned to
// obs::default_registry(): a caller-supplied registry (RunOptions-style
// injection) never received them. Every component now resolves its handles
// against the injected registry; these tests drive each one with a private
// registry and verify (a) the private registry sees the counts and (b) the
// default registry does not move.
#include <gtest/gtest.h>

#include "core/policy_init.hpp"
#include "core/rac_agent.hpp"
#include "core/violation.hpp"
#include "env/analytic_env.hpp"
#include "obs/metrics.hpp"
#include "rl/td_learner.hpp"
#include "util/rng.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;

std::uint64_t default_count(const std::string& name) {
  return obs::default_registry().counter(name).value();
}

TEST(MetricsRouting, ViolationDetectorUsesInjectedRegistry) {
  obs::Registry mine;
  const std::uint64_t before = default_count("core.violation.pvar_checks");
  ViolationOptions opt;
  opt.registry = &mine;
  ViolationDetector detector(opt);
  for (int i = 0; i < 20; ++i) detector.observe(500.0);
  EXPECT_GT(mine.counter("core.violation.pvar_checks").value(), 0u);
  EXPECT_EQ(default_count("core.violation.pvar_checks"), before);
}

TEST(MetricsRouting, BatchTrainUsesInjectedRegistry) {
  obs::Registry mine;
  const std::uint64_t before = default_count("rl.td.runs");
  rl::QTable table;
  const std::vector<Configuration> starts = {Configuration::defaults()};
  rl::TdParams params;
  params.max_sweeps = 3;
  util::Rng rng(1);
  rl::batch_train(
      table, starts, [](const Configuration&) { return 0.5; }, params, rng,
      &mine);
  EXPECT_EQ(mine.counter("rl.td.runs").value(), 1u);
  EXPECT_GT(mine.counter("rl.td.backups").value(), 0u);
  EXPECT_EQ(default_count("rl.td.runs"), before);
}

TEST(MetricsRouting, RacAgentUsesInjectedRegistry) {
  obs::Registry mine;
  const std::uint64_t decisions_before = default_count("core.rac.decisions");
  const std::uint64_t td_before = default_count("rl.td.runs");
  RacOptions opt;
  opt.registry = &mine;
  opt.online_td.max_sweeps = 3;
  RacAgent agent(opt, InitialPolicyLibrary{});
  for (int i = 0; i < 5; ++i) {
    const Configuration applied = agent.decide();
    agent.observe(applied, {500.0, 25.0});
  }
  EXPECT_EQ(mine.counter("core.rac.decisions").value(), 5u);
  // Online retraining inherits the agent's registry.
  EXPECT_GT(mine.counter("rl.td.runs").value(), 0u);
  // The detector inherits it too (warm-up passes after min_history).
  EXPECT_GT(mine.counter("core.violation.pvar_checks").value(), 0u);
  EXPECT_EQ(default_count("core.rac.decisions"), decisions_before);
  EXPECT_EQ(default_count("rl.td.runs"), td_before);
}

TEST(MetricsRouting, PolicyInitUsesInjectedRegistry) {
  obs::Registry mine;
  const std::uint64_t policies_before =
      default_count("core.policy_init.policies");
  const std::uint64_t td_before = default_count("rl.td.runs");
  env::AnalyticEnvOptions env_opt;
  env_opt.noise_sigma = 0.0;
  AnalyticEnv env({workload::MixType::kShopping, env::VmLevel::kLevel1},
                  env_opt);
  PolicyInitOptions opt;
  opt.offline_td.max_sweeps = 30;
  opt.registry = &mine;
  learn_initial_policy(env, opt);
  EXPECT_EQ(mine.counter("core.policy_init.policies").value(), 1u);
  EXPECT_GT(mine.counter("core.policy_init.offline_samples").value(), 0u);
  EXPECT_EQ(mine.counter("rl.td.runs").value(), 1u);
  EXPECT_EQ(default_count("core.policy_init.policies"), policies_before);
  EXPECT_EQ(default_count("rl.td.runs"), td_before);
}

}  // namespace
}  // namespace rac::core
