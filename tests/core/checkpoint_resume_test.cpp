// Golden crash-resume test: kill the agent mid-run, restore from the
// checkpoint file, and require the stitched run to be bit-identical to an
// uninterrupted one -- same IterationRecords, same decision-trace JSONL,
// same final learner state. This is the acceptance bar for the
// checkpoint/restore subsystem (and it runs under ASan/UBSan and RAC_AUDIT
// via the regular ctest phases).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_init.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "core/snapshot.hpp"
#include "env/analytic_env.hpp"
#include "obs/trace.hpp"

namespace rac::core {
namespace {

using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

constexpr int kTotal = 28;
constexpr int kCrashAt = 14;

InitialPolicyLibrary small_library() {
  PolicyInitOptions init;
  init.offline_td.max_sweeps = 60;
  AnalyticEnvOptions offline;
  offline.noise_sigma = 0.0;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, offline);
  InitialPolicyLibrary library;
  library.add(learn_initial_policy(env, init));
  return library;
}

ContextSchedule test_schedule() {
  // A context change mid-run exercises the violation detector and policy
  // machinery across the crash boundary.
  return {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {12, {MixType::kOrdering, VmLevel::kLevel3}},
  };
}

std::string jsonl(const obs::MemoryTraceSink& sink) {
  std::string out;
  for (const auto& event : sink.events()) {
    out += obs::to_json(event);
    out += '\n';
  }
  return out;
}

std::string final_state(const RacAgent& agent) {
  std::ostringstream os;
  save_agent_snapshot(os, agent.snapshot());
  return os.str();
}

TEST(CheckpointResume, StitchedRunIsBitIdenticalToUninterrupted) {
  const InitialPolicyLibrary library = small_library();
  const RacOptions options;  // paper constants
  AnalyticEnvOptions live_options;
  live_options.seed = 2024;
  const std::string checkpoint_path =
      ::testing::TempDir() + "/rac_checkpoint_resume_test.rac";

  // --- reference: never crashes -----------------------------------------
  AnalyticEnv reference_env({MixType::kShopping, VmLevel::kLevel1},
                            live_options);
  RacAgent reference_agent(options, library, 0);
  obs::MemoryTraceSink reference_sink;
  RunOptions reference_run;
  reference_run.sink = &reference_sink;
  const AgentTrace reference = run_agent(reference_env, reference_agent,
                                         test_schedule(), kTotal,
                                         reference_run);

  // --- leg 1: checkpointing run that "crashes" at kCrashAt ---------------
  AnalyticEnv live_env({MixType::kShopping, VmLevel::kLevel1}, live_options);
  RacAgent doomed_agent(options, library, 0);
  obs::MemoryTraceSink first_sink;
  RunOptions first_leg;
  first_leg.sink = &first_sink;
  first_leg.checkpoint_every = 5;
  first_leg.checkpoint_path = checkpoint_path;
  const AgentTrace before = run_agent(live_env, doomed_agent,
                                      test_schedule(), kCrashAt, first_leg);

  // --- leg 2: fresh agent restored from the checkpoint file --------------
  const RunCheckpoint checkpoint = load_checkpoint_file(checkpoint_path);
  ASSERT_EQ(checkpoint.completed_iterations,
            static_cast<std::uint64_t>(kCrashAt));
  std::istringstream state(checkpoint.agent_state);
  RacAgent resumed_agent(options, library, 0);
  resumed_agent.restore(load_agent_snapshot(state));
  obs::MemoryTraceSink second_sink;
  RunOptions second_leg;
  second_leg.sink = &second_sink;
  second_leg.start_iteration =
      static_cast<int>(checkpoint.completed_iterations);
  second_leg.checkpoint_every = 5;
  second_leg.checkpoint_path = checkpoint_path;
  const AgentTrace after = run_agent(live_env, resumed_agent,
                                     test_schedule(), kTotal, second_leg);

  // --- records: stitched == reference, bitwise ---------------------------
  ASSERT_EQ(before.records.size() + after.records.size(),
            reference.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    const IterationRecord& got =
        i < before.records.size() ? before.records[i]
                                  : after.records[i - before.records.size()];
    const IterationRecord& want = reference.records[i];
    EXPECT_EQ(got.iteration, want.iteration);
    EXPECT_EQ(got.configuration, want.configuration);
    EXPECT_EQ(got.response_ms, want.response_ms) << "iteration " << i;
    EXPECT_EQ(got.throughput_rps, want.throughput_rps);
    EXPECT_EQ(got.context, want.context);
  }

  // --- decision trace: identical JSONL, byte for byte --------------------
  EXPECT_EQ(jsonl(first_sink) + jsonl(second_sink), jsonl(reference_sink));

  // --- final learner state: identical serialized snapshots ---------------
  EXPECT_EQ(final_state(resumed_agent), final_state(reference_agent));

  std::remove(checkpoint_path.c_str());
}

TEST(CheckpointResume, CheckpointFileIsRewrittenAsTheRunProgresses) {
  const InitialPolicyLibrary library = small_library();
  const RacOptions options;
  AnalyticEnvOptions live_options;
  live_options.seed = 7;
  const std::string checkpoint_path =
      ::testing::TempDir() + "/rac_checkpoint_progress_test.rac";

  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, live_options);
  RacAgent agent(options, library, 0);
  RunOptions run;
  run.checkpoint_every = 4;
  run.checkpoint_path = checkpoint_path;
  run_agent(env, agent, {}, 10, run);

  // The final write happens at the end of the run even though 10 is not a
  // multiple of 4, so a clean stop never loses trailing intervals.
  const RunCheckpoint last = load_checkpoint_file(checkpoint_path);
  EXPECT_EQ(last.completed_iterations, 10u);
  std::istringstream state(last.agent_state);
  RacAgent verifier(options, library, 0);
  EXPECT_NO_THROW(verifier.restore(load_agent_snapshot(state)));
  std::remove(checkpoint_path.c_str());
}

}  // namespace
}  // namespace rac::core
