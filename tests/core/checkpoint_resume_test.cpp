// Golden crash-resume test: kill the agent mid-run, restore from the
// checkpoint file, and require the stitched run to be bit-identical to an
// uninterrupted one -- same IterationRecords, same decision-trace JSONL,
// same final learner state. This is the acceptance bar for the
// checkpoint/restore subsystem (and it runs under ASan/UBSan and RAC_AUDIT
// via the regular ctest phases).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "core/policy_init.hpp"
#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "core/snapshot.hpp"
#include "env/analytic_env.hpp"
#include "fault/fault_env.hpp"
#include "obs/trace.hpp"

namespace rac::core {
namespace {

using env::AnalyticEnv;
using env::AnalyticEnvOptions;
using env::SystemContext;
using env::VmLevel;
using workload::MixType;

constexpr int kTotal = 28;
constexpr int kCrashAt = 14;

InitialPolicyLibrary small_library() {
  PolicyInitOptions init;
  init.offline_td.max_sweeps = 60;
  AnalyticEnvOptions offline;
  offline.noise_sigma = 0.0;
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, offline);
  InitialPolicyLibrary library;
  library.add(learn_initial_policy(env, init));
  return library;
}

ContextSchedule test_schedule() {
  // A context change mid-run exercises the violation detector and policy
  // machinery across the crash boundary.
  return {
      {0, {MixType::kShopping, VmLevel::kLevel1}},
      {12, {MixType::kOrdering, VmLevel::kLevel3}},
  };
}

std::string jsonl(const obs::MemoryTraceSink& sink) {
  std::string out;
  for (const auto& event : sink.events()) {
    out += obs::to_json(event);
    out += '\n';
  }
  return out;
}

std::string final_state(const RacAgent& agent) {
  std::ostringstream os;
  save_agent_snapshot(os, agent.snapshot());
  return os.str();
}

TEST(CheckpointResume, StitchedRunIsBitIdenticalToUninterrupted) {
  const InitialPolicyLibrary library = small_library();
  const RacOptions options;  // paper constants
  AnalyticEnvOptions live_options;
  live_options.seed = 2024;
  const std::string checkpoint_path =
      ::testing::TempDir() + "/rac_checkpoint_resume_test.rac";

  // --- reference: never crashes -----------------------------------------
  AnalyticEnv reference_env({MixType::kShopping, VmLevel::kLevel1},
                            live_options);
  RacAgent reference_agent(options, library, 0);
  obs::MemoryTraceSink reference_sink;
  RunOptions reference_run;
  reference_run.sink = &reference_sink;
  const AgentTrace reference = run_agent(reference_env, reference_agent,
                                         test_schedule(), kTotal,
                                         reference_run);

  // --- leg 1: checkpointing run that "crashes" at kCrashAt ---------------
  AnalyticEnv live_env({MixType::kShopping, VmLevel::kLevel1}, live_options);
  RacAgent doomed_agent(options, library, 0);
  obs::MemoryTraceSink first_sink;
  RunOptions first_leg;
  first_leg.sink = &first_sink;
  first_leg.checkpoint_every = 5;
  first_leg.checkpoint_path = checkpoint_path;
  const AgentTrace before = run_agent(live_env, doomed_agent,
                                      test_schedule(), kCrashAt, first_leg);

  // --- leg 2: fresh agent restored from the checkpoint file --------------
  const RunCheckpoint checkpoint = load_checkpoint_file(checkpoint_path);
  ASSERT_EQ(checkpoint.completed_iterations,
            static_cast<std::uint64_t>(kCrashAt));
  std::istringstream state(checkpoint.agent_state);
  RacAgent resumed_agent(options, library, 0);
  resumed_agent.restore(load_agent_snapshot(state));
  obs::MemoryTraceSink second_sink;
  RunOptions second_leg;
  second_leg.sink = &second_sink;
  second_leg.start_iteration =
      static_cast<int>(checkpoint.completed_iterations);
  second_leg.checkpoint_every = 5;
  second_leg.checkpoint_path = checkpoint_path;
  const AgentTrace after = run_agent(live_env, resumed_agent,
                                     test_schedule(), kTotal, second_leg);

  // --- records: stitched == reference, bitwise ---------------------------
  ASSERT_EQ(before.records.size() + after.records.size(),
            reference.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    const IterationRecord& got =
        i < before.records.size() ? before.records[i]
                                  : after.records[i - before.records.size()];
    const IterationRecord& want = reference.records[i];
    EXPECT_EQ(got.iteration, want.iteration);
    EXPECT_EQ(got.configuration, want.configuration);
    EXPECT_EQ(got.response_ms, want.response_ms) << "iteration " << i;
    EXPECT_EQ(got.throughput_rps, want.throughput_rps);
    EXPECT_EQ(got.context, want.context);
  }

  // --- decision trace: identical JSONL, byte for byte --------------------
  EXPECT_EQ(jsonl(first_sink) + jsonl(second_sink), jsonl(reference_sink));

  // --- final learner state: identical serialized snapshots ---------------
  EXPECT_EQ(final_state(resumed_agent), final_state(reference_agent));

  std::remove(checkpoint_path.c_str());
}

// PR 5 extension of the golden: the same crash-resume bar with the
// hardened loop running against an injected-fault environment. The agent
// snapshot carries the robustness state (median window, blowout streak,
// freeze tracker) and the FaultyEnv state rides alongside it, so the
// stitched run -- fresh inner env, restored fault script position -- must
// reproduce the uninterrupted one bit for bit, including the ground-truth
// history the injector records.
TEST(CheckpointResume, InjectedFaultRunStitchesBitIdentically) {
  const InitialPolicyLibrary library = small_library();
  RacOptions options;
  options.robustness.clamp = true;
  options.robustness.floor = -5.0;
  options.robustness.median_of = 3;
  options.robustness.freeze_detect_after = 2;
  options.safe_fallback.enabled = true;
  options.safe_fallback.after_blowouts = 3;
  options.safe_fallback.blowout_factor = 1.5;

  // Noiseless inner env: leg 2 rebuilds a FRESH inner environment, so the
  // only state crossing the crash boundary is the checkpoint + the
  // FaultyEnv state (fault decisions are pure in the interval anyway).
  AnalyticEnvOptions inner;
  inner.noise_sigma = 0.0;
  const auto make_inner = [&inner]() {
    return std::make_unique<AnalyticEnv>(
        SystemContext{MixType::kShopping, VmLevel::kLevel1}, inner);
  };

  fault::FaultyEnvOptions fopt;
  fopt.seed = 99;
  fopt.profile.drop_prob = 0.15;
  fopt.profile.spike_prob = 0.10;
  fopt.profile.spike_multiplier = 30.0;
  fault::FaultEpisode outage;  // a stuck sensor spanning the crash point
  outage.kind = fault::FaultKind::kFreeze;
  outage.start_interval = 12;
  outage.duration = 4;
  fopt.schedule.push_back(outage);

  RunOptions hardened_run;
  hardened_run.robustness.enabled = true;
  hardened_run.robustness.max_retries = 2;
  hardened_run.robustness.hold_last_on_missing = true;

  const std::string checkpoint_path =
      ::testing::TempDir() + "/rac_checkpoint_fault_test.rac";

  // --- reference: never crashes -----------------------------------------
  fault::FaultyEnv reference_env(make_inner(), fopt);
  RacAgent reference_agent(options, library, 0);
  obs::MemoryTraceSink reference_sink;
  RunOptions reference_run = hardened_run;
  reference_run.sink = &reference_sink;
  const AgentTrace reference = run_agent(reference_env, reference_agent,
                                         test_schedule(), kTotal,
                                         reference_run);

  // --- leg 1: crash at kCrashAt, carrying the injector state -------------
  fault::FaultyEnv live_env(make_inner(), fopt);
  RacAgent doomed_agent(options, library, 0);
  obs::MemoryTraceSink first_sink;
  RunOptions first_leg = hardened_run;
  first_leg.sink = &first_sink;
  first_leg.checkpoint_every = 5;
  first_leg.checkpoint_path = checkpoint_path;
  const AgentTrace before = run_agent(live_env, doomed_agent,
                                      test_schedule(), kCrashAt, first_leg);
  const fault::FaultyEnvState env_state = live_env.state();

  // --- leg 2: fresh env + restored fault state, restored agent -----------
  const RunCheckpoint checkpoint = load_checkpoint_file(checkpoint_path);
  ASSERT_EQ(checkpoint.completed_iterations,
            static_cast<std::uint64_t>(kCrashAt));
  fault::FaultyEnv resumed_env(make_inner(), fopt);
  resumed_env.restore(env_state);
  std::istringstream state(checkpoint.agent_state);
  RacAgent resumed_agent(options, library, 0);
  resumed_agent.restore(load_agent_snapshot(state));
  obs::MemoryTraceSink second_sink;
  RunOptions second_leg = hardened_run;
  second_leg.sink = &second_sink;
  second_leg.start_iteration =
      static_cast<int>(checkpoint.completed_iterations);
  const AgentTrace after = run_agent(resumed_env, resumed_agent,
                                     test_schedule(), kTotal, second_leg);

  // --- records, decision trace, learner state: all bitwise ---------------
  ASSERT_EQ(before.records.size() + after.records.size(),
            reference.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    const IterationRecord& got =
        i < before.records.size() ? before.records[i]
                                  : after.records[i - before.records.size()];
    const IterationRecord& want = reference.records[i];
    EXPECT_EQ(got.iteration, want.iteration);
    EXPECT_EQ(got.configuration, want.configuration);
    EXPECT_EQ(got.response_ms, want.response_ms) << "iteration " << i;
    EXPECT_EQ(got.throughput_rps, want.throughput_rps);
  }
  EXPECT_EQ(jsonl(first_sink) + jsonl(second_sink), jsonl(reference_sink));
  EXPECT_EQ(final_state(resumed_agent), final_state(reference_agent));

  // --- ground truth: the injector's true history stitches bitwise too ----
  ASSERT_EQ(live_env.true_history().size() +
                resumed_env.true_history().size(),
            reference_env.true_history().size());
  for (std::size_t i = 0; i < reference_env.true_history().size(); ++i) {
    const env::PerfSample& got =
        i < live_env.true_history().size()
            ? live_env.true_history()[i]
            : resumed_env.true_history()[i - live_env.true_history().size()];
    EXPECT_EQ(got.response_ms, reference_env.true_history()[i].response_ms)
        << "true interval " << i;
    EXPECT_EQ(got.throughput_rps,
              reference_env.true_history()[i].throughput_rps);
  }

  std::remove(checkpoint_path.c_str());
}

TEST(CheckpointResume, CheckpointFileIsRewrittenAsTheRunProgresses) {
  const InitialPolicyLibrary library = small_library();
  const RacOptions options;
  AnalyticEnvOptions live_options;
  live_options.seed = 7;
  const std::string checkpoint_path =
      ::testing::TempDir() + "/rac_checkpoint_progress_test.rac";

  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, live_options);
  RacAgent agent(options, library, 0);
  RunOptions run;
  run.checkpoint_every = 4;
  run.checkpoint_path = checkpoint_path;
  run_agent(env, agent, {}, 10, run);

  // The final write happens at the end of the run even though 10 is not a
  // multiple of 4, so a clean stop never loses trailing intervals.
  const RunCheckpoint last = load_checkpoint_file(checkpoint_path);
  EXPECT_EQ(last.completed_iterations, 10u);
  std::istringstream state(last.agent_state);
  RacAgent verifier(options, library, 0);
  EXPECT_NO_THROW(verifier.restore(load_agent_snapshot(state)));
  std::remove(checkpoint_path.c_str());
}

}  // namespace
}  // namespace rac::core
