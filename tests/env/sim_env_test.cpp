// Cross-validation between the two environment fidelities: the
// discrete-event simulator is the ground truth, the analytic model is its
// fast twin; they must agree on the qualitative shapes the RL experiments
// rely on.
#include "env/sim_env.hpp"

#include <gtest/gtest.h>

#include "config/space.hpp"
#include "env/analytic_env.hpp"

namespace rac::env {
namespace {

using config::Configuration;
using config::ParamId;
using workload::MixType;

SimEnvOptions fast_sim(int clients = 150) {
  SimEnvOptions opt;
  opt.num_clients = clients;
  opt.warmup_s = 40.0;
  opt.measure_s = 120.0;
  opt.seed = 31;
  return opt;
}

TEST(SimEnv, MeasureProducesPlausibleSample) {
  SimEnv e({MixType::kShopping, VmLevel::kLevel1}, fast_sim());
  const auto s = e.measure(Configuration{});
  EXPECT_GT(s.response_ms, 0.0);
  EXPECT_GT(s.throughput_rps, 1.0);
  EXPECT_GT(e.last_measurement().completed, 100u);
}

TEST(SimEnv, StatePersistsAcrossIntervals) {
  SimEnv e({MixType::kShopping, VmLevel::kLevel1}, fast_sim());
  Configuration c;
  e.measure(c);
  const double t_after_first = 0.0;
  (void)t_after_first;
  const auto second = e.measure(c);
  // Second interval runs on a warmed system: still plausible output.
  EXPECT_GT(second.throughput_rps, 1.0);
}

TEST(SimEnv, ContextChangeToSmallerVmDegradesPerformance) {
  SimEnv e({MixType::kOrdering, VmLevel::kLevel1}, fast_sim(220));
  Configuration c;
  c.set(ParamId::kMaxClients, 300);
  const auto before = e.measure(c);
  e.set_context({MixType::kOrdering, VmLevel::kLevel3});
  const auto after = e.measure(c);
  EXPECT_GT(after.response_ms, before.response_ms);
}

TEST(SimEnv, MixChangeRebuildsWorkload) {
  SimEnv e({MixType::kBrowsing, VmLevel::kLevel1}, fast_sim(220));
  Configuration c;
  c.set(ParamId::kMaxClients, 300);
  const auto browsing = e.measure(c);
  e.set_context({MixType::kOrdering, VmLevel::kLevel1});
  const auto ordering = e.measure(c);
  EXPECT_EQ(e.context().mix, MixType::kOrdering);
  // Ordering is heavier per request at equal population.
  EXPECT_GT(ordering.response_ms, browsing.response_ms);
}

// --- cross-fidelity agreement ----------------------------------------------

TEST(CrossValidation, StarvationShapeAgreesAcrossFidelities) {
  // Both models must show the MaxClients starvation cliff and its relief.
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  AnalyticEnvOptions aopt;
  aopt.noise_sigma = 0.0;
  aopt.num_clients = 150;
  AnalyticEnv analytic(ctx, aopt);
  SimEnv sim(ctx, fast_sim(150));

  Configuration starved;
  starved.set(ParamId::kMaxClients, 50);
  Configuration ample;
  ample.set(ParamId::kMaxClients, 350);

  const double a_ratio = analytic.evaluate(starved).response_ms /
                         analytic.evaluate(ample).response_ms;
  const double s_ratio =
      sim.measure(starved).response_ms / sim.measure(ample).response_ms;
  EXPECT_GT(a_ratio, 2.0);
  EXPECT_GT(s_ratio, 2.0);
}

TEST(CrossValidation, VmLevelOrderingAgreesAcrossFidelities) {
  Configuration c;
  c.set(ParamId::kMaxClients, 300);
  double prev_sim = 0.0;
  double prev_analytic = 0.0;
  for (VmLevel level : kAllLevels) {
    const SystemContext ctx{MixType::kOrdering, level};
    SimEnv sim(ctx, fast_sim(220));
    AnalyticEnvOptions aopt;
    aopt.noise_sigma = 0.0;
    aopt.num_clients = 220;
    AnalyticEnv analytic(ctx, aopt);
    const double s = sim.measure(c).response_ms;
    const double a = analytic.evaluate(c).response_ms;
    EXPECT_GT(s, prev_sim * 0.95) << level_name(level);
    EXPECT_GT(a, prev_analytic) << level_name(level);
    prev_sim = s;
    prev_analytic = a;
  }
}

TEST(CrossValidation, ThroughputAgreesWithinTolerance) {
  // At an unstarved configuration both fidelities should deliver the same
  // closed-loop throughput (it is pinned by N and the think time).
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  Configuration c;
  c.set(ParamId::kMaxClients, 400);
  AnalyticEnvOptions aopt;
  aopt.noise_sigma = 0.0;
  aopt.num_clients = 150;
  AnalyticEnv analytic(ctx, aopt);
  SimEnv sim(ctx, fast_sim(150));
  const double xa = analytic.evaluate(c).throughput_rps;
  const double xs = sim.measure(c).throughput_rps;
  EXPECT_NEAR(xs, xa, xa * 0.25);
}

}  // namespace
}  // namespace rac::env
