// Dynamic traffic through the environments: identity with no/empty model
// (the golden-digest compatibility argument), overlay semantics, cursor
// checkpoint/restore stitching, and the SimEnv population rebuild rules.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "config/configuration.hpp"
#include "env/analytic_env.hpp"
#include "env/sim_env.hpp"
#include "fault/fault_env.hpp"
#include "workload/dynamic.hpp"

namespace rac::env {
namespace {

using config::Configuration;
using workload::MixType;
using workload::TrafficModel;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

AnalyticEnvOptions noiseless() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

std::shared_ptr<const TrafficModel> busy_model() {
  auto model = std::make_shared<TrafficModel>();
  model->add_diurnal({32.0, 0.3, 0.0})
      .add_flash_crowd({7, 0.05, 2, 3, 4, 2.0})
      .add_mix_drift({MixType::kShopping, MixType::kOrdering, 8, 10})
      .add_think_noise({11, 0.2});
  return model;
}

// ---- AnalyticEnv ----------------------------------------------------------

TEST(AnalyticTraffic, NoModelAndEmptyModelMeasureBitwiseIdentically) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.1;  // include the noise stream in the comparison
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  AnalyticEnv plain(ctx, opt);
  AnalyticEnv modeled(ctx, opt);
  modeled.set_traffic_model(std::make_shared<TrafficModel>());
  const Configuration c;
  for (int i = 0; i < 20; ++i) {
    const auto a = plain.measure(c);
    const auto b = modeled.measure(c);
    EXPECT_EQ(bits(a.response_ms), bits(b.response_ms));
    EXPECT_EQ(bits(a.throughput_rps), bits(b.throughput_rps));
  }
  EXPECT_EQ(plain.traffic_interval(), 0u);
  EXPECT_EQ(modeled.traffic_interval(), 20u);  // cursor still advances
}

TEST(AnalyticTraffic, OneHotEvaluateUnderMatchesEvaluateBitwise) {
  for (const MixType mix : workload::kAllMixes) {
    AnalyticEnv env({mix, VmLevel::kLevel2}, noiseless());
    const Configuration c;
    ModelDiagnostics plain_diag;
    ModelDiagnostics under_diag;
    const auto plain = env.evaluate(c, &plain_diag);
    const auto under =
        env.evaluate_under(c, workload::one_hot_target(mix), &under_diag);
    EXPECT_EQ(bits(plain.response_ms), bits(under.response_ms));
    EXPECT_EQ(bits(plain.throughput_rps), bits(under.throughput_rps));
    EXPECT_EQ(bits(plain_diag.db_buffer_mb), bits(under_diag.db_buffer_mb));
  }
}

TEST(AnalyticTraffic, ConcurrencyScaleShiftsTheOperatingPoint) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, noiseless());
  const Configuration c;
  workload::TrafficTarget heavy = workload::one_hot_target(MixType::kShopping);
  heavy.concurrency_scale = 2.0;
  workload::TrafficTarget light = workload::one_hot_target(MixType::kShopping);
  light.concurrency_scale = 0.5;
  const double base = env.evaluate(c).response_ms;
  EXPECT_GT(env.evaluate_under(c, heavy).response_ms, base);
  EXPECT_LT(env.evaluate_under(c, light).response_ms, base);
}

TEST(AnalyticTraffic, MeasureUnderOverridesOneIntervalThenReverts) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  AnalyticEnv env(ctx, noiseless());
  AnalyticEnv reference(ctx, noiseless());
  const Configuration c;
  const auto surge = env.measure_under(
      workload::one_hot_target(MixType::kOrdering), c);
  // The overlay measured the ordering mix...
  AnalyticEnv ordering({MixType::kOrdering, VmLevel::kLevel1}, noiseless());
  EXPECT_EQ(bits(surge.response_ms),
            bits(ordering.measure(c).response_ms));
  // ...and did not disturb the scheduled stream.
  EXPECT_EQ(bits(env.measure(c).response_ms),
            bits(reference.measure(c).response_ms));
  EXPECT_EQ(env.context(), ctx);
}

TEST(AnalyticTraffic, CursorSeekStitchesAnInterruptedRunBitwise) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  const auto model = busy_model();
  const Configuration c;

  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.1;
  AnalyticEnv uninterrupted(ctx, opt);
  uninterrupted.set_traffic_model(model);
  std::vector<double> golden;
  for (int i = 0; i < 24; ++i) {
    golden.push_back(uninterrupted.measure(c).response_ms);
  }

  AnalyticEnv first_half(ctx, opt);
  first_half.set_traffic_model(model);
  std::vector<double> stitched;
  for (int i = 0; i < 9; ++i) {
    stitched.push_back(first_half.measure(c).response_ms);
  }
  const std::uint64_t cursor = first_half.traffic_interval();
  const util::RngState noise = first_half.noise_state();

  AnalyticEnv resumed(ctx, opt);
  resumed.set_traffic_model(model);  // resume re-installs the run input...
  resumed.seek_traffic(cursor);      // ...and seeks to the saved cursor
  resumed.restore_noise_state(noise);
  for (int i = 9; i < 24; ++i) {
    stitched.push_back(resumed.measure(c).response_ms);
  }

  ASSERT_EQ(stitched.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(bits(stitched[i]), bits(golden[i])) << "interval " << i;
  }
}

TEST(AnalyticTraffic, CloneCarriesTheModelAndCursor) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  AnalyticEnv env(ctx, noiseless());
  env.set_traffic_model(busy_model());
  const Configuration c;
  for (int i = 0; i < 5; ++i) env.measure(c);

  auto clone_base = env.clone_with_seed(0);
  auto* clone = dynamic_cast<AnalyticEnv*>(clone_base.get());
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->traffic_interval(), 5u);
  EXPECT_EQ(clone->traffic_model(), env.traffic_model());
  // Noiseless: the clone's stream continues bitwise.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(bits(env.measure(c).response_ms),
              bits(clone->measure(c).response_ms));
  }
}

TEST(AnalyticTraffic, InstallingAModelResetsTheCursor) {
  AnalyticEnv env({MixType::kShopping, VmLevel::kLevel1}, noiseless());
  env.set_traffic_model(busy_model());
  const Configuration c;
  for (int i = 0; i < 3; ++i) env.measure(c);
  EXPECT_EQ(env.traffic_interval(), 3u);
  env.set_traffic_model(busy_model());
  EXPECT_EQ(env.traffic_interval(), 0u);
}

// ---- default hook behaviour (base Environment) ----------------------------

TEST(EnvironmentTraffic, BaseSetTrafficModelRejectsNonNull) {
  // The concrete envs override the hooks; exercise the base defaults
  // through a minimal stub.
  class Stub final : public Environment {
   public:
    PerfSample measure(const config::Configuration&) override { return {}; }
    void set_context(const SystemContext& c) override { ctx_ = c; }
    SystemContext context() const override { return ctx_; }

   private:
    SystemContext ctx_{};
  };
  Stub stub;
  EXPECT_THROW(stub.set_traffic_model(busy_model()), std::invalid_argument);
  stub.set_traffic_model(nullptr);  // clearing is always allowed
  EXPECT_EQ(stub.traffic_model(), nullptr);
  EXPECT_THROW(stub.seek_traffic(1), std::invalid_argument);
  stub.seek_traffic(0);
  EXPECT_EQ(stub.traffic_interval(), 0u);
}

// ---- SimEnv ---------------------------------------------------------------

SimEnvOptions quick_sim() {
  SimEnvOptions opt;
  opt.num_clients = 60;
  opt.warmup_s = 5.0;
  opt.measure_s = 20.0;
  opt.seed = 3;
  return opt;
}

TEST(SimTraffic, NoModelAndEmptyModelMeasureBitwiseIdentically) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  SimEnv plain(ctx, quick_sim());
  SimEnv modeled(ctx, quick_sim());
  modeled.set_traffic_model(std::make_shared<TrafficModel>());
  const Configuration c;
  for (int i = 0; i < 3; ++i) {
    const auto a = plain.measure(c);
    const auto b = modeled.measure(c);
    EXPECT_EQ(bits(a.response_ms), bits(b.response_ms));
    EXPECT_EQ(bits(a.throughput_rps), bits(b.throughput_rps));
  }
}

TEST(SimTraffic, ModelDrivenPopulationFollowsTheTarget) {
  const SystemContext ctx{MixType::kShopping, VmLevel::kLevel1};
  auto model = std::make_shared<TrafficModel>();
  model->add_diurnal({8.0, 0.5, 0.0});
  SimEnv env(ctx, quick_sim());
  env.set_traffic_model(model);
  const Configuration c;
  for (int i = 0; i < 4; ++i) {
    const auto sample = env.measure(c);
    EXPECT_GT(sample.throughput_rps, 0.0);
  }
  EXPECT_EQ(env.traffic_interval(), 4u);
}

TEST(SimTraffic, SurgeOverSimEnvRestoresTheScheduledContext) {
  fault::FaultyEnvOptions opt;
  fault::FaultEpisode episode;
  episode.kind = fault::FaultKind::kSurge;
  episode.start_interval = 1;
  episode.duration = 1;
  episode.surge_context = SystemContext{MixType::kOrdering, VmLevel::kLevel3};
  opt.schedule.push_back(episode);
  const SystemContext scheduled{MixType::kShopping, VmLevel::kLevel1};
  fault::FaultyEnv env(std::make_unique<SimEnv>(scheduled, quick_sim()), opt);
  const Configuration c;
  for (int i = 0; i < 3; ++i) env.measure(c);
  EXPECT_EQ(env.context(), scheduled);
  EXPECT_EQ(env.true_history().size(), 3u);
}

TEST(FaultTraffic, TrafficHooksForwardThroughTheDecorator) {
  fault::FaultyEnvOptions opt;
  auto inner = std::make_unique<AnalyticEnv>(
      SystemContext{MixType::kShopping, VmLevel::kLevel1}, noiseless());
  AnalyticEnv* analytic = inner.get();
  fault::FaultyEnv env(std::move(inner), opt);
  env.set_traffic_model(busy_model());
  EXPECT_EQ(env.traffic_model(), analytic->traffic_model());
  const Configuration c;
  for (int i = 0; i < 4; ++i) env.measure(c);
  EXPECT_EQ(env.traffic_interval(), 4u);
  env.seek_traffic(2);
  EXPECT_EQ(analytic->traffic_interval(), 2u);
}

TEST(FaultTraffic, SurgeTruthMatchesTheLegacyContextSwap) {
  // The surge re-expression on measure_under must reproduce the legacy
  // "set surge context, measure, restore" numbers bitwise.
  const SystemContext scheduled{MixType::kShopping, VmLevel::kLevel1};
  const SystemContext surge_ctx{MixType::kOrdering, VmLevel::kLevel3};
  fault::FaultyEnvOptions opt;
  fault::FaultEpisode episode;
  episode.kind = fault::FaultKind::kSurge;
  episode.start_interval = 2;
  episode.duration = 1;
  episode.surge_context = surge_ctx;
  opt.schedule.push_back(episode);

  AnalyticEnvOptions env_opt;
  env_opt.noise_sigma = 0.1;
  fault::FaultyEnv env(std::make_unique<AnalyticEnv>(scheduled, env_opt), opt);

  // Legacy reference computed by hand with a twin environment.
  AnalyticEnv twin(scheduled, env_opt);
  const Configuration c;
  std::vector<double> expected;
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      twin.set_context(surge_ctx);
      expected.push_back(twin.measure(c).response_ms);
      twin.set_context(scheduled);
    } else {
      expected.push_back(twin.measure(c).response_ms);
    }
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(bits(env.measure(c).response_ms), bits(expected[static_cast<std::size_t>(i)]))
        << "interval " << i;
  }
  EXPECT_EQ(env.context(), scheduled);
}

}  // namespace
}  // namespace rac::env
