// Property tests on the analytic environment model: these lock in the
// qualitative phenomena the paper's evaluation depends on (Figures 1-4).
#include "env/analytic_env.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "config/space.hpp"

namespace rac::env {
namespace {

using config::Configuration;
using config::ParamId;
using workload::MixType;

AnalyticEnvOptions quiet() {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.0;
  return opt;
}

double rt(const AnalyticEnv& e, const Configuration& c) {
  return e.evaluate(c).response_ms;
}

// ---------------------------------------------------------------------------

TEST(AnalyticEnv, DeterministicWithoutNoise) {
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel1}, quiet());
  const Configuration c;
  EXPECT_DOUBLE_EQ(rt(e, c), rt(e, c));
}

TEST(AnalyticEnv, NoiseIsMultiplicativeAndSeeded) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = 0.1;
  opt.seed = 5;
  AnalyticEnv a({MixType::kShopping, VmLevel::kLevel1}, opt);
  AnalyticEnv b({MixType::kShopping, VmLevel::kLevel1}, opt);
  const Configuration c;
  // Same seed, same stream.
  EXPECT_DOUBLE_EQ(a.measure(c).response_ms, b.measure(c).response_ms);
  // Noisy measurements vary around the deterministic value.
  AnalyticEnv det({MixType::kShopping, VmLevel::kLevel1}, quiet());
  const double base = rt(det, c);
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) sum += a.measure(c).response_ms;
  EXPECT_NEAR(sum / 200.0, base, base * 0.05);
}

TEST(AnalyticEnv, LittleLawConsistency) {
  AnalyticEnvOptions opt = quiet();
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel1}, opt);
  ModelDiagnostics diag;
  const auto sample = e.evaluate(Configuration{}, &diag);
  // X * (Z + R) ~= N for the closed model (the slot-wait extension makes
  // this approximate).
  const double z =
      workload::browser_profile(MixType::kShopping).effective_think_mean_s();
  const double cycle = z + sample.response_ms / 1000.0;
  EXPECT_NEAR(sample.throughput_rps * cycle, opt.num_clients,
              opt.num_clients * 0.15);
}

// --- Figure 2: MaxClients effect per VM level -----------------------------

struct LevelCase {
  VmLevel level;
};

class MaxClientsCurve : public ::testing::TestWithParam<VmLevel> {};

TEST_P(MaxClientsCurve, ConcaveUpwardWithInteriorMinimum) {
  AnalyticEnv e({MixType::kOrdering, GetParam()}, quiet());
  std::vector<double> ys;
  const auto grid = config::ConfigSpace::fine_grid(ParamId::kMaxClients);
  for (int k : grid) {
    Configuration c;
    c.set(ParamId::kMaxClients, k);
    ys.push_back(rt(e, c));
  }
  const auto min_it = std::min_element(ys.begin(), ys.end());
  const std::size_t min_idx = static_cast<std::size_t>(min_it - ys.begin());
  // Interior minimum.
  EXPECT_GT(min_idx, 0u);
  EXPECT_LT(min_idx, ys.size() - 1);
  // Downward branch before, upward branch after (allowing small plateaus).
  EXPECT_GT(ys.front(), *min_it * 2.0);
  EXPECT_GT(ys.back(), *min_it * 1.05);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, MaxClientsCurve,
                         ::testing::Values(VmLevel::kLevel1, VmLevel::kLevel2,
                                           VmLevel::kLevel3));

TEST(AnalyticEnv, OptimalMaxClientsDecreasesWithVmCapacity) {
  // The paper's counter-intuitive Figure-2 finding: more powerful VMs want
  // a SMALLER MaxClients (requests complete faster, so fewer concurrent
  // requests are in flight).
  auto best_k = [&](VmLevel level) {
    AnalyticEnv e({MixType::kOrdering, level}, quiet());
    double best = std::numeric_limits<double>::infinity();
    int arg = 0;
    for (int k : config::ConfigSpace::fine_grid(ParamId::kMaxClients)) {
      Configuration c;
      c.set(ParamId::kMaxClients, k);
      const double y = rt(e, c);
      if (y < best) {
        best = y;
        arg = k;
      }
    }
    return arg;
  };
  const int k1 = best_k(VmLevel::kLevel1);
  const int k3 = best_k(VmLevel::kLevel3);
  EXPECT_LT(k1, k3);
}

TEST(AnalyticEnv, ResponseTimeOrderedByVmLevel) {
  const Configuration c;
  double prev = 0.0;
  for (VmLevel level : kAllLevels) {
    AnalyticEnv e({MixType::kOrdering, level}, quiet());
    const double y = rt(e, c);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

// --- Figure 4: concavity of single-parameter sweeps ------------------------

class ParameterConcavity : public ::testing::TestWithParam<ParamId> {};

TEST_P(ParameterConcavity, NoStrictInteriorLocalMinimumAwayFromGlobal) {
  // Sweeping one parameter (others at defaults) the response-time curve is
  // concave-upward in the paper's loose sense: a single descent region
  // followed by a rise (possibly with flat plateaus, e.g. once MaxClients
  // exceeds the browser population nothing changes). We assert the
  // RL-relevant property: every STRICT interior local minimum is within
  // 10% of the sweep's global minimum -- i.e. the surface has no deceptive
  // dips for a greedy learner to fall into.
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel3}, quiet());
  const ParamId id = GetParam();
  const auto grid = config::ConfigSpace::fine_grid(id);
  std::vector<double> ys;
  for (int v : grid) {
    Configuration c;
    c.set(id, v);
    ys.push_back(rt(e, c));
  }
  const double global_min = *std::min_element(ys.begin(), ys.end());
  for (std::size_t i = 1; i + 1 < ys.size(); ++i) {
    const bool strict_local_min = ys[i] < ys[i - 1] && ys[i] < ys[i + 1];
    if (strict_local_min) {
      EXPECT_LE(ys[i], global_min * 1.10)
          << "deceptive dip at index " << i << " for " << config::name(id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllParams, ParameterConcavity,
    ::testing::ValuesIn(config::kAllParams.begin(), config::kAllParams.end()),
    [](const ::testing::TestParamInfo<ParamId>& info) {
      std::string n(config::name(info.param));
      for (char& ch : n) {
        if (ch == ' ') ch = '_';
      }
      return n;
    });

// --- Figure 1 / 3 style: no universal best configuration -------------------

TEST(AnalyticEnv, KeepAliveSweepHasInteriorOptimum) {
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel1}, quiet());
  std::vector<double> ys;
  for (int ka : config::ConfigSpace::fine_grid(ParamId::kKeepAliveTimeout)) {
    Configuration c;
    c.set(ParamId::kKeepAliveTimeout, ka);
    ys.push_back(rt(e, c));
  }
  const auto min_it = std::min_element(ys.begin(), ys.end());
  EXPECT_GT(min_it - ys.begin(), 0);
  EXPECT_LT(min_it - ys.begin(), static_cast<long>(ys.size()) - 1);
}

TEST(AnalyticEnv, MixesDifferInResponseAtSameConfig) {
  const Configuration c;
  AnalyticEnv browsing({MixType::kBrowsing, VmLevel::kLevel1}, quiet());
  AnalyticEnv ordering({MixType::kOrdering, VmLevel::kLevel1}, quiet());
  // Ordering is the heavier mix at the default configuration.
  EXPECT_GT(rt(ordering, c), 1.5 * rt(browsing, c));
}

TEST(AnalyticEnv, DefaultConfigurationIsFarFromTuned) {
  // The premise of auto-configuration: defaults leave big gains on the
  // table (paper Section 5.2 reports ~60% improvement over the default).
  AnalyticEnv e({MixType::kOrdering, VmLevel::kLevel1}, quiet());
  Configuration tuned;
  tuned.set(ParamId::kMaxClients, 250);
  EXPECT_GT(rt(e, Configuration{}), 2.0 * rt(e, tuned));
}

TEST(AnalyticEnv, DiagnosticsAreInternallyConsistent) {
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel3}, quiet());
  ModelDiagnostics d;
  Configuration c;
  e.evaluate(c, &d);
  EXPECT_GT(d.throughput_rps, 0.0);
  EXPECT_GE(d.held_connections, 0.0);
  EXPECT_LE(d.held_connections, c.value(ParamId::kMaxClients));
  EXPECT_GE(d.db_miss_mult, 1.0);
  EXPECT_GE(d.write_lock_mult, 1.0);
  EXPECT_GT(d.db_buffer_mb, 0.0);
  EXPECT_GE(d.connection_reuse, 0.0);
  EXPECT_LE(d.connection_reuse, 1.0);
  EXPECT_LE(d.web_workers, c.value(ParamId::kMaxClients));
  EXPECT_LE(d.app_threads, c.value(ParamId::kMaxThreads));
}

TEST(AnalyticEnv, SetContextChangesBehaviour) {
  AnalyticEnv e({MixType::kShopping, VmLevel::kLevel1}, quiet());
  const Configuration c;
  const double before = rt(e, c);
  e.set_context({MixType::kOrdering, VmLevel::kLevel3});
  EXPECT_EQ(e.context().level, VmLevel::kLevel3);
  EXPECT_GT(rt(e, c), before);
}

TEST(AnalyticEnv, ThroughputScalesWithClients) {
  AnalyticEnvOptions few = quiet();
  few.num_clients = 100;
  AnalyticEnvOptions many = quiet();
  many.num_clients = 300;
  AnalyticEnv a({MixType::kBrowsing, VmLevel::kLevel1}, few);
  AnalyticEnv b({MixType::kBrowsing, VmLevel::kLevel1}, many);
  Configuration c;
  c.set(ParamId::kMaxClients, 600);  // ample slots
  EXPECT_NEAR(b.evaluate(c).throughput_rps / a.evaluate(c).throughput_rps,
              3.0, 0.4);
}

}  // namespace
}  // namespace rac::env
