#include "env/context.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rac::env {
namespace {

TEST(Context, VmLevelsMatchPaper) {
  EXPECT_EQ(vm_spec(VmLevel::kLevel1).vcpus, 4);
  EXPECT_DOUBLE_EQ(vm_spec(VmLevel::kLevel1).mem_mb, 4096.0);
  EXPECT_EQ(vm_spec(VmLevel::kLevel2).vcpus, 3);
  EXPECT_DOUBLE_EQ(vm_spec(VmLevel::kLevel2).mem_mb, 3072.0);
  EXPECT_EQ(vm_spec(VmLevel::kLevel3).vcpus, 2);
  EXPECT_DOUBLE_EQ(vm_spec(VmLevel::kLevel3).mem_mb, 2048.0);
}

TEST(Context, WebVmIsFixed) {
  const auto web = web_vm_spec();
  EXPECT_EQ(web.vcpus, 2);
  EXPECT_DOUBLE_EQ(web.mem_mb, 2048.0);
}

TEST(Context, Table2MatchesPaper) {
  ASSERT_EQ(kTable2Contexts.size(), 6u);
  EXPECT_EQ(table2_context(1).mix, workload::MixType::kShopping);
  EXPECT_EQ(table2_context(1).level, VmLevel::kLevel1);
  EXPECT_EQ(table2_context(2).mix, workload::MixType::kOrdering);
  EXPECT_EQ(table2_context(2).level, VmLevel::kLevel1);
  EXPECT_EQ(table2_context(3).mix, workload::MixType::kOrdering);
  EXPECT_EQ(table2_context(3).level, VmLevel::kLevel3);
  EXPECT_EQ(table2_context(4).mix, workload::MixType::kShopping);
  EXPECT_EQ(table2_context(4).level, VmLevel::kLevel2);
  EXPECT_EQ(table2_context(5).mix, workload::MixType::kOrdering);
  EXPECT_EQ(table2_context(5).level, VmLevel::kLevel2);
  EXPECT_EQ(table2_context(6).mix, workload::MixType::kBrowsing);
  EXPECT_EQ(table2_context(6).level, VmLevel::kLevel1);
}

TEST(Context, Table2OutOfRangeThrows) {
  EXPECT_THROW(table2_context(0), std::out_of_range);
  EXPECT_THROW(table2_context(7), std::out_of_range);
}

TEST(Context, NamesAreReadable) {
  EXPECT_EQ(table2_context(1).name(), "shopping/Level-1");
  EXPECT_EQ(level_name(VmLevel::kLevel3), "Level-3");
}

TEST(Context, TokenRoundTripsEveryMixLevelCombination) {
  for (workload::MixType mix : workload::kAllMixes) {
    for (VmLevel level : kAllLevels) {
      const SystemContext context{mix, level};
      const std::string token = context_token(context);
      EXPECT_EQ(token, context.name());
      EXPECT_EQ(token.find(' '), std::string::npos) << token;
      EXPECT_EQ(parse_context_token(token), context);
    }
  }
}

TEST(Context, ParseTokenRejectsUnknownNames) {
  EXPECT_THROW(parse_context_token("shopping"), std::invalid_argument);
  EXPECT_THROW(parse_context_token("surfing/Level-1"),
               std::invalid_argument);
  EXPECT_THROW(parse_context_token("shopping/Level-9"),
               std::invalid_argument);
  EXPECT_THROW(parse_context_token(""), std::invalid_argument);
}

TEST(Context, Equality) {
  EXPECT_EQ(table2_context(2), table2_context(2));
  EXPECT_FALSE(table2_context(1) == table2_context(2));
}

}  // namespace
}  // namespace rac::env
