// Measurement-robustness hardening of the online agent + runner (PR 5):
// every knob defaults off and must then be invisible; switched on, each
// one neutralizes the fault class it targets.
#include <gtest/gtest.h>

#include <memory>

#include "core/rac_agent.hpp"
#include "core/runner.hpp"
#include "env/analytic_env.hpp"
#include "fault/fault_env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rac::core {
namespace {

using config::Configuration;
using env::AnalyticEnv;
using env::AnalyticEnvOptions;

AnalyticEnvOptions env_options(double sigma = 0.1, std::uint64_t seed = 50) {
  AnalyticEnvOptions opt;
  opt.noise_sigma = sigma;
  opt.seed = seed;
  return opt;
}

// One-context library, built once per test binary (offline training is the
// expensive part).
const InitialPolicyLibrary& shared_library() {
  static const InitialPolicyLibrary* lib = [] {
    PolicyInitOptions init;
    init.coarse_levels = 4;
    init.offline_td.max_sweeps = 120;
    auto* l = new InitialPolicyLibrary(build_library(
        {env::table2_context(1)},
        [](const env::SystemContext& ctx) {
          return std::make_unique<AnalyticEnv>(ctx, env_options(0.05, 7));
        },
        init));
    return l;
  }();
  return *lib;
}

RacOptions hardened_options() {
  RacOptions opt;
  opt.robustness.clamp = true;
  opt.robustness.floor = -5.0;
  opt.robustness.median_of = 3;
  opt.robustness.freeze_detect_after = 2;
  opt.safe_fallback.enabled = true;
  opt.safe_fallback.after_blowouts = 3;
  opt.safe_fallback.blowout_factor = 2.0;
  return opt;
}

bool records_identical(const AgentTrace& a, const AgentTrace& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].response_ms != b.records[i].response_ms ||
        a.records[i].throughput_rps != b.records[i].throughput_rps ||
        a.records[i].configuration.values() !=
            b.records[i].configuration.values()) {
      return false;
    }
  }
  return true;
}

// The paper-exact loop must be reproduced bit for bit by (a) the robust
// measurement path over a clean environment and (b) a fault layer with no
// faults configured -- the hardening is strictly additive.
TEST(RobustAgent, CleanRunWithRobustnessPlumbingIsBitwiseIdentical) {
  const auto ctx = env::table2_context(1);

  RacAgent baseline_agent(RacOptions{}, shared_library(), 0);
  AnalyticEnv baseline_env(ctx, env_options());
  const AgentTrace baseline =
      run_agent(baseline_env, baseline_agent, {}, 20, {});

  RacAgent robust_agent(RacOptions{}, shared_library(), 0);
  fault::FaultyEnv wrapped(std::make_unique<AnalyticEnv>(ctx, env_options()),
                           fault::FaultyEnvOptions{});
  RunOptions robust;
  robust.robustness.enabled = true;
  const AgentTrace decorated = run_agent(wrapped, robust_agent, {}, 20, robust);

  EXPECT_TRUE(records_identical(baseline, decorated));
}

// Satellite 2: with the clamp the unbounded paper reward no longer lets a
// single spiked measurement dominate every Q-value.
TEST(RobustAgent, SingleSpikeNoLongerDominatesTheReward) {
  RacOptions clamped;
  clamped.robustness.clamp = true;
  clamped.robustness.floor = -5.0;
  RacAgent hardened(clamped, InitialPolicyLibrary{});
  RacAgent paper_exact(RacOptions{}, InitialPolicyLibrary{});

  for (RacAgent* agent : {&hardened, &paper_exact}) {
    const Configuration c = agent->decide();
    agent->observe(c, {1.0e6, 1.0});  // monitoring spike: 1000 s "latency"
  }
  obs::TraceEvent hardened_event;
  hardened.annotate(hardened_event);
  obs::TraceEvent paper_event;
  paper_exact.annotate(paper_event);

  EXPECT_DOUBLE_EQ(hardened_event.reward, -5.0);
  // (1000 - 1e6) / 1000: the unclamped penalty that poisons the Q-table.
  EXPECT_DOUBLE_EQ(paper_event.reward, -999.0);
}

TEST(RobustAgent, MedianOfThreeFiltersASingleOutlier) {
  RacOptions opt;
  opt.robustness.median_of = 3;
  RacAgent filtered(opt, InitialPolicyLibrary{});
  RacAgent unfiltered(RacOptions{}, InitialPolicyLibrary{});

  for (RacAgent* agent : {&filtered, &unfiltered}) {
    const Configuration c = agent->decide();
    agent->observe(c, {100.0, 10.0});
    agent->observe(c, {100.0, 10.0});
    agent->observe(c, {1.0e6, 10.0});  // the outlier
  }
  // Median of {100, 100, 1e6} is 100: the blend never sees the spike.
  EXPECT_DOUBLE_EQ(
      *filtered.experience().response_ms(filtered.current()), 100.0);
  EXPECT_GT(*unfiltered.experience().response_ms(unfiltered.current()),
            1000.0);
}

TEST(RobustAgent, FreezeDetectorSkipsStuckSensorReadings) {
  obs::Registry registry;
  RacOptions opt;
  opt.registry = &registry;
  opt.robustness.freeze_detect_after = 2;
  RacAgent agent(opt, InitialPolicyLibrary{});

  const Configuration c = agent.decide();
  for (int i = 0; i < 5; ++i) {
    agent.observe(c, {500.0, 10.0});  // bitwise-identical: sensor stuck
  }
  // The first two land (building the repeat evidence); the rest are stale.
  EXPECT_EQ(registry.counter("core.rac.frozen_samples").value(), 3u);
  EXPECT_EQ(agent.experience().entries()[0].observation.count, 2u);

  // A fresh (different) value unsticks the detector and is ingested.
  agent.observe(c, {600.0, 10.0});
  EXPECT_EQ(agent.experience().entries()[0].observation.count, 3u);
  EXPECT_EQ(registry.counter("core.rac.frozen_samples").value(), 3u);
}

TEST(RobustAgent, SafeFallbackRevertsToBestKnownConfiguration) {
  obs::Registry registry;
  RacOptions opt;
  opt.registry = &registry;
  opt.safe_fallback.enabled = true;
  opt.safe_fallback.after_blowouts = 2;
  opt.safe_fallback.blowout_factor = 2.0;  // blowout: rt > 2000 ms
  RacAgent agent(opt, shared_library(), 0);

  const Configuration first = agent.decide();
  agent.observe(first, {200.0, 50.0});
  EXPECT_EQ(agent.blowout_streak(), 0);

  agent.observe(agent.decide(), {5000.0, 1.0});
  EXPECT_EQ(agent.blowout_streak(), 1);
  agent.observe(agent.decide(), {5000.0, 1.0});
  EXPECT_EQ(agent.blowout_streak(), 2);

  const Configuration fallback = agent.decide();
  EXPECT_EQ(agent.safe_fallbacks(), 1);
  EXPECT_EQ(agent.blowout_streak(), 0);  // streak consumed by the fallback
  ASSERT_TRUE(agent.experience().best().has_value());
  EXPECT_EQ(fallback, *agent.experience().best());
  EXPECT_EQ(registry.counter("core.rac.safe_fallbacks").value(), 1u);

  obs::TraceEvent event;
  agent.annotate(event);
  EXPECT_TRUE(event.safe_fallback);

  // A good interval at the fallback config ends the emergency.
  agent.observe(fallback, {200.0, 50.0});
  agent.decide();
  EXPECT_EQ(agent.safe_fallbacks(), 1);
}

TEST(RobustAgent, RunnerRetryRecoversADroppedInterval) {
  obs::Registry registry;
  fault::FaultyEnvOptions fopt;
  fopt.registry = &registry;
  {
    fault::FaultEpisode drop;
    drop.kind = fault::FaultKind::kDrop;
    drop.start_interval = 2;
    fopt.schedule.push_back(drop);
  }
  fault::FaultyEnv env(
      std::make_unique<AnalyticEnv>(env::table2_context(1), env_options()),
      fopt);
  RacAgent agent(RacOptions{}, shared_library(), 0);

  obs::MemoryTraceSink sink;
  RunOptions options;
  options.registry = &registry;
  options.sink = &sink;
  options.robustness.enabled = true;
  options.robustness.max_retries = 2;
  const AgentTrace trace = run_agent(env, agent, {}, 6, options);

  ASSERT_EQ(trace.records.size(), 6u);
  const auto events = sink.events();
  EXPECT_EQ(events[2].measure_attempts, 2);  // drop, then a clean retry
  EXPECT_FALSE(events[2].measurement_missing);
  EXPECT_EQ(events[2].fault_note, "");  // the attempt that landed was clean
  EXPECT_EQ(events[3].measure_attempts, 1);
  EXPECT_EQ(registry.counter("core.fault.measure_retries").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.backoff_units").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.missing_intervals").value(), 0u);
}

TEST(RobustAgent, RunnerHoldsLastSampleWhenAllRetriesFail) {
  obs::Registry registry;
  fault::FaultyEnvOptions fopt;
  fopt.registry = &registry;
  {
    fault::FaultEpisode outage;  // swallows the attempt plus both retries
    outage.kind = fault::FaultKind::kDrop;
    outage.start_interval = 3;
    outage.duration = 3;
    fopt.schedule.push_back(outage);
  }
  fault::FaultyEnv env(
      std::make_unique<AnalyticEnv>(env::table2_context(1), env_options()),
      fopt);
  RacAgent agent(RacOptions{}, shared_library(), 0);

  obs::MemoryTraceSink sink;
  RunOptions options;
  options.registry = &registry;
  options.sink = &sink;
  options.robustness.enabled = true;
  options.robustness.max_retries = 2;
  const AgentTrace trace = run_agent(env, agent, {}, 8, options);

  ASSERT_EQ(trace.records.size(), 8u);
  // Hold-last: the lost interval repeats the previous record's sample.
  EXPECT_DOUBLE_EQ(trace.records[3].response_ms, trace.records[2].response_ms);
  EXPECT_DOUBLE_EQ(trace.records[3].throughput_rps,
                   trace.records[2].throughput_rps);
  const auto events = sink.events();
  EXPECT_EQ(events[3].measure_attempts, 3);
  EXPECT_TRUE(events[3].measurement_missing);
  EXPECT_EQ(events[3].fault_note, "drop");
  EXPECT_EQ(registry.counter("core.fault.measure_retries").value(), 2u);
  EXPECT_EQ(registry.counter("core.fault.backoff_units").value(), 3u);  // 1+2
  EXPECT_EQ(registry.counter("core.fault.missing_intervals").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.held_samples").value(), 1u);
}

TEST(RobustAgent, RejectsBadRobustnessOptions) {
  RacOptions opt;
  opt.robustness.median_of = 0;
  EXPECT_THROW(RacAgent(opt, InitialPolicyLibrary{}), std::invalid_argument);
  opt = RacOptions{};
  opt.robustness.freeze_detect_after = -1;
  EXPECT_THROW(RacAgent(opt, InitialPolicyLibrary{}), std::invalid_argument);
  opt = RacOptions{};
  opt.safe_fallback.enabled = true;
  opt.safe_fallback.after_blowouts = 0;
  EXPECT_THROW(RacAgent(opt, InitialPolicyLibrary{}), std::invalid_argument);
  opt = RacOptions{};
  opt.safe_fallback.enabled = true;
  opt.safe_fallback.blowout_factor = 0.0;
  EXPECT_THROW(RacAgent(opt, InitialPolicyLibrary{}), std::invalid_argument);

  AnalyticEnv env(env::table2_context(1), env_options());
  RacAgent agent(RacOptions{}, InitialPolicyLibrary{});
  RunOptions bad;
  bad.robustness.enabled = true;
  bad.robustness.max_retries = -1;
  EXPECT_THROW(run_agent(env, agent, {}, 1, bad), std::invalid_argument);
}

TEST(RobustAgent, SnapshotRoundTripsTheRobustnessState) {
  const RacOptions opt = hardened_options();
  RacAgent original(opt, InitialPolicyLibrary{});
  const Configuration c = original.decide();
  original.observe(c, {300.0, 10.0});
  original.observe(c, {300.0, 10.0});   // freeze evidence builds
  // A sustained (distinct-valued) blowout: the first bad sample is absorbed
  // by the median-of-3, the second pushes the median past the threshold.
  original.observe(c, {2500.0, 2.0});
  EXPECT_EQ(original.blowout_streak(), 0);
  original.observe(c, {2501.0, 2.0});
  EXPECT_EQ(original.blowout_streak(), 1);

  RacAgent resumed(opt, InitialPolicyLibrary{});
  resumed.restore(original.snapshot());
  EXPECT_EQ(resumed.blowout_streak(), original.blowout_streak());

  // Both continue identically through the median filter / blowout logic.
  const Configuration next_a = original.decide();
  const Configuration next_b = resumed.decide();
  EXPECT_EQ(next_a, next_b);
  original.observe(next_a, {2502.0, 2.0});
  resumed.observe(next_b, {2502.0, 2.0});
  EXPECT_EQ(original.blowout_streak(), resumed.blowout_streak());
  obs::TraceEvent ea;
  original.annotate(ea);
  obs::TraceEvent eb;
  resumed.annotate(eb);
  EXPECT_DOUBLE_EQ(ea.reward, eb.reward);

  // Hardening hyperparameters are part of the snapshot contract: restoring
  // into a differently-configured agent must be refused.
  RacAgent paper_exact(RacOptions{}, InitialPolicyLibrary{});
  EXPECT_THROW(paper_exact.restore(original.snapshot()),
               std::invalid_argument);
}

}  // namespace
}  // namespace rac::core
