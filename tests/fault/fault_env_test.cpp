#include "fault/fault_env.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "config/configuration.hpp"
#include "env/analytic_env.hpp"
#include "env/context.hpp"
#include "obs/metrics.hpp"

namespace rac::fault {
namespace {

using config::Configuration;
using config::ParamId;

// Records every interaction and returns a distinct deterministic sample
// per call (so freezes/spikes are visible), shifted by the context (so
// surges are visible).
class FakeEnv final : public env::Environment {
 public:
  explicit FakeEnv(env::SystemContext ctx = env::table2_context(1))
      : ctx_(ctx) {}

  env::PerfSample measure(const Configuration& c) override {
    ++calls;
    measured_configs.push_back(c);
    measured_contexts.push_back(ctx_);
    env::PerfSample s;
    s.response_ms = 100.0 * calls +
                    (ctx_.level == env::VmLevel::kLevel3 ? 10000.0 : 0.0);
    s.throughput_rps = static_cast<double>(calls);
    return s;
  }
  void set_context(const env::SystemContext& c) override {
    context_sets.push_back(c);
    ctx_ = c;
  }
  env::SystemContext context() const override { return ctx_; }
  std::unique_ptr<env::Environment> clone_with_seed(
      std::uint64_t /*seed*/) const override {
    auto clone = std::make_unique<FakeEnv>(ctx_);
    clone->calls = calls;  // same deterministic sample stream position
    return clone;
  }

  int calls = 0;
  std::vector<Configuration> measured_configs;
  std::vector<env::SystemContext> measured_contexts;
  std::vector<env::SystemContext> context_sets;

 private:
  env::SystemContext ctx_;
};

FaultEpisode episode(FaultKind kind, int start, int duration = 1,
                     double magnitude = 0.0,
                     std::optional<env::SystemContext> surge = std::nullopt) {
  FaultEpisode e;
  e.kind = kind;
  e.start_interval = start;
  e.duration = duration;
  e.magnitude = magnitude;
  e.surge_context = surge;
  return e;
}

bool same_decision(const FaultDecision& a, const FaultDecision& b) {
  return a.drop == b.drop && a.spike == b.spike && a.freeze == b.freeze &&
         a.reconfig_fail == b.reconfig_fail && a.surge == b.surge;
}

FaultProfile stochastic_profile() {
  FaultProfile p;
  p.drop_prob = 0.30;
  p.spike_prob = 0.20;
  p.freeze_prob = 0.25;
  p.reconfig_fail_prob = 0.15;
  p.surge_prob = 0.10;
  p.surge_context = env::table2_context(3);
  return p;
}

TEST(FaultyEnv, RejectsInvalidOptions) {
  EXPECT_THROW(FaultyEnv(nullptr, FaultyEnvOptions{}), std::invalid_argument);

  const auto reject = [](FaultyEnvOptions opt) {
    EXPECT_THROW(FaultyEnv(std::make_unique<FakeEnv>(), std::move(opt)),
                 std::invalid_argument);
  };
  FaultyEnvOptions opt;
  opt.profile.drop_prob = 1.5;
  reject(opt);
  opt = {};
  opt.profile.spike_prob = -0.1;
  reject(opt);
  opt = {};
  opt.profile.spike_multiplier = 0.0;
  reject(opt);
  opt = {};
  opt.profile.surge_prob = 0.5;  // no surge_context anywhere
  reject(opt);
  opt = {};
  opt.schedule.push_back(episode(FaultKind::kDrop, -1));
  reject(opt);
  opt = {};
  opt.schedule.push_back(episode(FaultKind::kDrop, 0, 0));
  reject(opt);
  opt = {};
  opt.schedule.push_back(episode(FaultKind::kSpike, 0, 1, -2.0));
  reject(opt);
  opt = {};
  opt.schedule.push_back(episode(FaultKind::kSurge, 0));  // no context
  reject(opt);
}

TEST(FaultyEnv, NoFaultsIsTransparent) {
  FakeEnv bare;
  FaultyEnv wrapped(std::make_unique<FakeEnv>(), FaultyEnvOptions{});
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(wrapped.faults_at(i).any());
    const env::PerfSample expect = bare.measure(Configuration::defaults());
    const auto got = wrapped.try_measure(Configuration::defaults());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->response_ms, expect.response_ms);
    EXPECT_EQ(got->throughput_rps, expect.throughput_rps);
    EXPECT_EQ(wrapped.last_fault_note(), "");
  }
  // The reported and true histories coincide on a clean run.
  ASSERT_EQ(wrapped.true_history().size(), 5u);
  EXPECT_EQ(wrapped.true_history().back().throughput_rps, 5.0);
}

TEST(FaultyEnv, FaultScriptIsDeterministicAndPure) {
  FaultyEnvOptions opt;
  opt.profile = stochastic_profile();
  opt.seed = 2026;
  FaultyEnv a(std::make_unique<FakeEnv>(), opt);
  FaultyEnv b(std::make_unique<FakeEnv>(), opt);

  // Same seed + profile: bitwise-identical fault sequence.
  int any_count = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(same_decision(a.faults_at(i), b.faults_at(i))) << i;
    if (a.faults_at(i).any()) ++any_count;
  }
  EXPECT_GT(any_count, 0);

  // The decision is a pure function of the interval: measuring (which
  // consumes inner-environment state) must not shift the script, and
  // re-querying must reproduce the answer.
  const FaultDecision before = a.faults_at(7);
  for (int i = 0; i < 50; ++i) a.measure(Configuration::defaults());
  EXPECT_TRUE(same_decision(before, a.faults_at(7)));
  EXPECT_TRUE(same_decision(a.faults_at(123), b.faults_at(123)));

  // A different seed produces a different script.
  FaultyEnvOptions other = opt;
  other.seed = 2027;
  FaultyEnv c(std::make_unique<FakeEnv>(), other);
  bool differs = false;
  for (int i = 0; i < 200 && !differs; ++i) {
    differs = !same_decision(a.faults_at(i), c.faults_at(i));
  }
  EXPECT_TRUE(differs);
}

TEST(FaultyEnv, ScheduleWindowsAndOverrides) {
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kDrop, 3, 2));
  opt.schedule.push_back(episode(FaultKind::kSpike, 10, 1, 7.0));
  opt.schedule.push_back(episode(FaultKind::kSpike, 11));
  opt.schedule.push_back(
      episode(FaultKind::kSurge, 12, 1, 0.0, env::table2_context(2)));
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);

  EXPECT_FALSE(env.faults_at(2).drop);
  EXPECT_TRUE(env.faults_at(3).drop);
  EXPECT_TRUE(env.faults_at(4).drop);
  EXPECT_FALSE(env.faults_at(5).drop);

  EXPECT_TRUE(env.faults_at(10).spike);
  EXPECT_DOUBLE_EQ(env.faults_at(10).spike_multiplier, 7.0);
  // Magnitude 0 falls back to the profile's multiplier.
  EXPECT_TRUE(env.faults_at(11).spike);
  EXPECT_DOUBLE_EQ(env.faults_at(11).spike_multiplier, 25.0);

  const FaultDecision surge = env.faults_at(12);
  EXPECT_TRUE(surge.surge);
  ASSERT_TRUE(surge.surge_context.has_value());
  EXPECT_EQ(*surge.surge_context, env::table2_context(2));
}

TEST(FaultyEnv, DropReturnsSentinelAndTryMeasureNullopt) {
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kDrop, 1));
  opt.timeout_sentinel = {-1.0, 0.0};

  FaultyEnv infallible(std::make_unique<FakeEnv>(), opt);
  infallible.measure(Configuration::defaults());
  const env::PerfSample sentinel = infallible.measure(Configuration::defaults());
  EXPECT_DOUBLE_EQ(sentinel.response_ms, -1.0);
  EXPECT_EQ(infallible.last_fault_note(), "drop");
  // The system still ran the interval: the truth is recorded.
  ASSERT_EQ(infallible.true_history().size(), 2u);
  EXPECT_DOUBLE_EQ(infallible.true_history()[1].response_ms, 200.0);

  FaultyEnv fallible(std::make_unique<FakeEnv>(), opt);
  EXPECT_TRUE(fallible.try_measure(Configuration::defaults()).has_value());
  EXPECT_FALSE(fallible.try_measure(Configuration::defaults()).has_value());
}

TEST(FaultyEnv, FreezeRepeatsTheLastReportedSample) {
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kFreeze, 1));
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  const env::PerfSample r0 = env.measure(Configuration::defaults());
  const env::PerfSample r1 = env.measure(Configuration::defaults());
  EXPECT_EQ(r1.response_ms, r0.response_ms);
  EXPECT_EQ(r1.throughput_rps, r0.throughput_rps);
  EXPECT_EQ(env.last_fault_note(), "freeze");
  // Meanwhile the system actually produced a different sample.
  EXPECT_NE(env.true_history()[1].response_ms, r1.response_ms);
}

TEST(FaultyEnv, FreezeWithNothingReportedYetIsANoOp) {
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kFreeze, 0));
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  const env::PerfSample r0 = env.measure(Configuration::defaults());
  EXPECT_DOUBLE_EQ(r0.response_ms, 100.0);  // the truth, unfrozen
}

TEST(FaultyEnv, FreezeRepeatsLastReportedNotLastDropped) {
  // A drop leaves last_reported untouched: the freeze two intervals later
  // must repeat the last sample that actually arrived, not the sentinel.
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kDrop, 1));
  opt.schedule.push_back(episode(FaultKind::kFreeze, 2));
  opt.timeout_sentinel = {-1.0, 0.0};
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  const env::PerfSample r0 = env.measure(Configuration::defaults());
  env.measure(Configuration::defaults());  // dropped
  const env::PerfSample r2 = env.measure(Configuration::defaults());
  EXPECT_EQ(r2.response_ms, r0.response_ms);
  EXPECT_EQ(r2.throughput_rps, r0.throughput_rps);
}

TEST(FaultyEnv, SpikeMultipliesOnlyTheReport) {
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kSpike, 0, 1, 9.0));
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  const env::PerfSample reported = env.measure(Configuration::defaults());
  const env::PerfSample truth = env.true_history()[0];
  EXPECT_DOUBLE_EQ(reported.response_ms, truth.response_ms * 9.0);
  EXPECT_DOUBLE_EQ(reported.throughput_rps, truth.throughput_rps);
}

TEST(FaultyEnv, ReconfigFailKeepsThePreviouslyAppliedConfiguration) {
  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);

  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kReconfigFail, 1));
  auto fake_owner = std::make_unique<FakeEnv>();
  FakeEnv* fake = fake_owner.get();
  FaultyEnv env(std::move(fake_owner), opt);
  env.measure(a);
  env.measure(b);  // actuation lost: the system still runs `a`
  env.measure(b);
  ASSERT_EQ(fake->measured_configs.size(), 3u);
  EXPECT_EQ(fake->measured_configs[0], a);
  EXPECT_EQ(fake->measured_configs[1], a);
  EXPECT_EQ(fake->measured_configs[2], b);
  EXPECT_EQ(env.state().applied_configuration, b);
}

TEST(FaultyEnv, FirstIntervalReconfigFailPassesThrough) {
  // Nothing was ever applied, so there is no "previous" to stick with.
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kReconfigFail, 0));
  auto fake_owner = std::make_unique<FakeEnv>();
  FakeEnv* fake = fake_owner.get();
  FaultyEnv env(std::move(fake_owner), opt);
  env.measure(b);
  ASSERT_EQ(fake->measured_configs.size(), 1u);
  EXPECT_EQ(fake->measured_configs[0], b);
}

TEST(FaultyEnv, SurgeMeasuresUnderTheSurgeContextThenRestores) {
  const auto scheduled = env::table2_context(1);
  const auto surge_ctx = env::table2_context(3);
  FaultyEnvOptions opt;
  opt.schedule.push_back(episode(FaultKind::kSurge, 0, 1, 0.0, surge_ctx));
  auto fake_owner = std::make_unique<FakeEnv>(scheduled);
  FakeEnv* fake = fake_owner.get();
  FaultyEnv env(std::move(fake_owner), opt);

  const env::PerfSample reported = env.measure(Configuration::defaults());
  ASSERT_EQ(fake->measured_contexts.size(), 1u);
  EXPECT_EQ(fake->measured_contexts[0], surge_ctx);
  EXPECT_EQ(env.context(), scheduled);  // restored afterwards
  // The surge rides on measure_under: the level flip brackets the call and
  // the default measure_under swaps the mix in and back out around the
  // measurement itself.
  const env::SystemContext level_flipped{scheduled.mix, surge_ctx.level};
  ASSERT_EQ(fake->context_sets.size(), 4u);
  EXPECT_EQ(fake->context_sets[0], level_flipped);
  EXPECT_EQ(fake->context_sets[1], surge_ctx);
  EXPECT_EQ(fake->context_sets[2], level_flipped);
  EXPECT_EQ(fake->context_sets[3], scheduled);
  // The surge distorts the truth (Level-3 shift), not the reporting path.
  EXPECT_GT(reported.response_ms, 10000.0);
  EXPECT_DOUBLE_EQ(reported.response_ms, env.true_history()[0].response_ms);
}

TEST(FaultyEnv, CloneWithSeedContinuesTheSameFaultScript) {
  FaultyEnvOptions opt;
  opt.profile = stochastic_profile();
  opt.seed = 31;
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  for (int i = 0; i < 3; ++i) env.measure(Configuration::defaults());

  auto clone_base = env.clone_with_seed(999);
  ASSERT_NE(clone_base, nullptr);
  auto* clone = dynamic_cast<FaultyEnv*>(clone_base.get());
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->interval(), 3);
  EXPECT_EQ(clone->last_fault_note(), env.last_fault_note());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(same_decision(env.faults_at(i), clone->faults_at(i))) << i;
  }
  // The fake inner environment is deterministic, so the continuation is
  // bitwise-identical too (reseeding only affects noisy inner envs).
  const env::PerfSample a = env.measure(Configuration::defaults());
  const env::PerfSample b = clone->measure(Configuration::defaults());
  EXPECT_EQ(a.response_ms, b.response_ms);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
}

TEST(FaultyEnv, StateRestoreContinuesBitIdentically) {
  // A noiseless analytic inner env is a pure function of (config, context),
  // so FaultyEnvState fully determines the continuation.
  const auto ctx = env::table2_context(1);
  env::AnalyticEnvOptions pure;
  pure.noise_sigma = 0.0;
  pure.seed = 5;

  FaultyEnvOptions opt;
  opt.profile.drop_prob = 0.20;
  opt.profile.freeze_prob = 0.20;
  opt.profile.spike_prob = 0.10;
  opt.profile.reconfig_fail_prob = 0.20;
  opt.seed = 42;
  opt.timeout_sentinel = {-1.0, 0.0};

  Configuration a;
  Configuration b;
  b.set(ParamId::kMaxClients, 400);
  const auto config_at = [&](int i) { return i % 2 == 0 ? a : b; };

  FaultyEnv uninterrupted(std::make_unique<env::AnalyticEnv>(ctx, pure), opt);
  std::vector<env::PerfSample> expected;
  for (int i = 0; i < 10; ++i) {
    expected.push_back(uninterrupted.measure(config_at(i)));
  }

  FaultyEnv first_half(std::make_unique<env::AnalyticEnv>(ctx, pure), opt);
  for (int i = 0; i < 6; ++i) first_half.measure(config_at(i));
  const FaultyEnvState saved = first_half.state();
  EXPECT_EQ(saved.interval, 6);

  FaultyEnv resumed(std::make_unique<env::AnalyticEnv>(ctx, pure), opt);
  resumed.restore(saved);
  EXPECT_EQ(resumed.interval(), 6);
  for (int i = 6; i < 10; ++i) {
    const env::PerfSample got = resumed.measure(config_at(i));
    EXPECT_EQ(got.response_ms, expected[static_cast<std::size_t>(i)].response_ms)
        << i;
    EXPECT_EQ(got.throughput_rps,
              expected[static_cast<std::size_t>(i)].throughput_rps)
        << i;
  }

  FaultyEnvState bad;
  bad.interval = -1;
  EXPECT_THROW(resumed.restore(bad), std::invalid_argument);
}

TEST(FaultyEnv, CountersAreRoutedToTheGivenRegistry) {
  obs::Registry registry;
  FaultyEnvOptions opt;
  opt.registry = &registry;
  opt.schedule.push_back(episode(FaultKind::kDrop, 1));
  opt.schedule.push_back(episode(FaultKind::kSpike, 2));
  opt.schedule.push_back(episode(FaultKind::kFreeze, 3));
  opt.schedule.push_back(episode(FaultKind::kReconfigFail, 4));
  opt.schedule.push_back(
      episode(FaultKind::kSurge, 5, 1, 0.0, env::table2_context(3)));
  FaultyEnv env(std::make_unique<FakeEnv>(), opt);
  for (int i = 0; i < 6; ++i) env.measure(Configuration::defaults());

  EXPECT_EQ(registry.counter("core.fault.intervals").value(), 6u);
  EXPECT_EQ(registry.counter("core.fault.drops").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.spikes").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.freezes").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.reconfig_failures").value(), 1u);
  EXPECT_EQ(registry.counter("core.fault.surges").value(), 1u);
}

TEST(FaultyEnv, KindNamesAndDecisionNotes) {
  EXPECT_EQ(fault_kind_name(FaultKind::kDrop), "drop");
  EXPECT_EQ(fault_kind_name(FaultKind::kSpike), "spike");
  EXPECT_EQ(fault_kind_name(FaultKind::kFreeze), "freeze");
  EXPECT_EQ(fault_kind_name(FaultKind::kReconfigFail), "reconfig-fail");
  EXPECT_EQ(fault_kind_name(FaultKind::kSurge), "surge");

  FaultDecision clean;
  EXPECT_FALSE(clean.any());
  EXPECT_EQ(clean.note(), "");
  FaultDecision multi;
  multi.drop = true;
  multi.spike = true;
  EXPECT_TRUE(multi.any());
  EXPECT_EQ(multi.note(), "drop+spike");
}

}  // namespace
}  // namespace rac::fault
