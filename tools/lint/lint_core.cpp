#include "lint_core.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

#include "tokenizer.hpp"

namespace rac::lint {

namespace {

bool path_starts_with(std::string_view path, std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

struct LineRule {
  std::string_view id;
  std::regex pattern;
  std::string_view message;
  /// Empty: applies everywhere. Otherwise the file must be under one of
  /// these prefixes for the rule to fire.
  std::vector<std::string_view> only_under;
  /// Files exempt from the rule (exact relpath or directory prefix).
  std::vector<std::string_view> except_under;
  /// Match against the raw line instead of the comment/string-stripped
  /// one. Needed by rules that inspect string-literal contents (e.g. the
  /// quoted path of an #include); such patterns must be anchored tightly
  /// enough not to fire inside comments.
  bool match_raw = false;
};

const char* kFloatLit = R"((\d+\.\d*|\.\d+)([eE][+-]?\d+)?[fFlL]?)";

const std::vector<LineRule>& line_rules() {
  static const std::vector<LineRule> rules = [] {
    std::vector<LineRule> r;
    r.push_back(LineRule{
        "rand",
        std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|\brandom_device\b|(^|[^\w:.])rand\s*\()"),
        "nondeterministic randomness; use the seeded util::Rng "
        "(util::derive_seed for per-task streams)",
        {},
        {"src/util/rng."}});
    r.push_back(LineRule{
        "wall-clock",
        std::regex(R"(\bsystem_clock\b|(^|[^\w.])time\s*\(\s*(nullptr|NULL|0)\s*\)|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b)"),
        "wall-clock read in a reproducible subsystem; time must come from "
        "the simulation clock or the caller",
        {"src/core/", "src/rl/", "src/env/", "src/tiersim/",
         "src/queueing/"},
        {}});
    // Scoped to src/: a CLI binary (tools/bench/examples) owns the
    // process and may legitimately report from the default registry.
    r.push_back(LineRule{
        "default-registry",
        std::regex(R"(\bdefault_registry\b)"),
        "default_registry() referenced outside src/obs/; take an "
        "obs::Registry* and resolve via obs::registry_or_default",
        {"src/"},
        {"src/obs/"}});
    r.push_back(LineRule{
        "raw-assert",
        std::regex(R"((^|[^\w])assert\s*\(|#\s*include\s*<cassert>)"),
        "raw assert in library code (vanishes under NDEBUG); use "
        "RAC_EXPECT/RAC_ENSURE/RAC_INVARIANT from util/contracts.hpp",
        {},
        {}});
    // Scoped to src/: stdout IS the product of a CLI or bench binary.
    r.push_back(LineRule{
        "iostream",
        std::regex(R"(\bstd\s*::\s*(cout|cerr|clog)\b)"),
        "direct console I/O in library code; report via return values, "
        "exceptions, or util::log",
        {"src/"},
        {"src/util/log.cpp"}});
    r.push_back(LineRule{
        "include-hygiene",
        std::regex(R"(^\s*#\s*include\s*"[^"]*\.\./)"),
        "path-traversing include; project includes are rooted at src/",
        {},
        {},
        /*match_raw=*/true});
    r.push_back(LineRule{
        "locale-io",
        std::regex(
            R"(\bstd\s*::\s*(stod|stof|stold)\b|\b(strtod|strtof|strtold|atof)\s*\(|\bsetlocale\s*\()"),
        "locale-sensitive numeric parsing (result depends on the process "
        "locale); use util/lineio parse_double/std::from_chars",
        {},
        {}});
    // Same rule id, second pattern: printf/scanf-family calls with a
    // floating-point conversion in the format string. Needs the raw line
    // (the stripper blanks string literals, taking the "%a" with it).
    r.push_back(LineRule{
        "locale-io",
        std::regex(
            R"(\b((f|s|sn|v|vf|vs|vsn)?printf|(f|s|v|vf|vs)?scanf)\s*\(.*"[^"]*%[-+ #'0-9.*]*(l|L)?[aAeEfFgG])"),
        "locale-sensitive printf/scanf float conversion (output depends on "
        "the process locale); use util/lineio format_double/std::to_chars",
        {},
        {},
        /*match_raw=*/true});
    r.push_back(LineRule{
        "unchecked-measure",
        std::regex(R"((\.|->)\s*measure\s*\()"),
        "direct Environment::measure() in the online management loop; "
        "use try_measure() so a lost interval degrades gracefully, or "
        "justify an offline/bootstrap probe with a suppression",
        {"src/core/"},
        {}});
    r.push_back(LineRule{
        "untracked-timer",
        std::regex(R"(\b(steady_clock|high_resolution_clock)\s*::\s*now\s*\()"),
        "raw clock read in library code; time phases with obs::ProfileScope "
        "or obs::ScopedTimer so the work shows up in bench reports, or "
        "justify with a suppression",
        {"src/"},
        {"src/obs/"}});
    r.push_back(LineRule{
        "hot-path-alloc",
        std::regex(
            R"(\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|\bunordered_(map|set)\s*<|\bstd\s*::\s*(map|set|list|multimap|multiset)\s*<)"),
        "per-element heap allocation in a hot-path subsystem (operator "
        "new, make_unique/make_shared, or a node-based container); use "
        "flat/arena storage, or justify a cold-path site with a "
        "suppression",
        {"src/queueing/", "src/tiersim/", "src/rl/"},
        {}});
    r.push_back(LineRule{
        "float-eq",
        std::regex(std::string(R"((==|!=)\s*[-+]?)") + kFloatLit + "|" +
                   kFloatLit + R"(\s*(==|!=))"),
        "exact floating-point comparison against a literal; compare with a "
        "tolerance or justify with a suppression",
        {},
        {}});
    return r;
  }();
  return rules;
}

bool rule_applies(const LineRule& rule, std::string_view relpath) {
  for (const auto& exempt : rule.except_under) {
    if (path_starts_with(relpath, exempt)) return false;
  }
  if (rule.only_under.empty()) return true;
  for (const auto& prefix : rule.only_under) {
    if (path_starts_with(relpath, prefix)) return true;
  }
  return false;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> info = {
      {"rand", "randomness outside util::Rng (determinism)"},
      {"wall-clock", "wall-clock reads in simulated subsystems"},
      {"default-registry", "default_registry() pinned outside src/obs/"},
      {"raw-assert", "assert() in library code; use contract macros"},
      {"iostream", "std::cout/cerr/clog in library code; use util::log"},
      {"pragma-once", "headers must open with #pragma once"},
      {"include-hygiene", "no path-traversing quoted includes"},
      {"locale-io", "locale-sensitive numeric I/O; use util/lineio"},
      {"untracked-timer",
       "raw steady/high_resolution clock reads in src/ outside obs/"},
      {"hot-path-alloc",
       "per-element heap allocation in src/{queueing,tiersim,rl}"},
      {"float-eq", "exact float comparison against a literal"},
      {"unchecked-measure",
       "raw measure() in src/core/; use try_measure or suppress"},
      {"unused-suppression",
       "allow() comment that suppresses no findings; remove it"},
  };
  return info;
}

std::vector<Finding> lint_text(const std::string& relpath,
                               const std::string& contents) {
  std::vector<Finding> findings;
  const srcscan::ScanResult scanned = srcscan::scan(contents);
  srcscan::SuppressionSet suppressions(scanned.lines, "rac-lint:");
  std::istringstream in(contents);
  std::string line;
  int line_no = 0;
  bool saw_pragma_once = false;
  int first_code_line = 0;  // first non-blank, non-comment line

  while (std::getline(in, line)) {
    ++line_no;
    static const std::string kEmpty;
    const std::string& code =
        line_no <= static_cast<int>(scanned.lines.size())
            ? scanned.lines[line_no - 1].code
            : kEmpty;

    const bool blank =
        code.find_first_not_of(" \t\r") == std::string::npos;
    if (!blank && first_code_line == 0) {
      first_code_line = line_no;
      if (code.find("#pragma once") != std::string::npos) {
        saw_pragma_once = true;
      }
    }

    for (const auto& rule : line_rules()) {
      if (!rule_applies(rule, relpath)) continue;
      const std::string& target = rule.match_raw ? line : code;
      auto begin =
          std::sregex_iterator(target.begin(), target.end(), rule.pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        if (suppressions.allowed(line_no, rule.id)) continue;
        findings.push_back(Finding{relpath, line_no, std::string(rule.id),
                                   std::string(rule.message)});
      }
    }
  }

  if (is_header(relpath) && !saw_pragma_once) {
    const int at = std::max(first_code_line, 1);
    if (!suppressions.allowed(at, "pragma-once")) {
      findings.push_back(Finding{relpath, at, "pragma-once",
                                 "header does not open with #pragma once"});
    }
  }

  // Stale suppressions fail the build so they cannot accumulate: every
  // allow() must be earning its keep on the line it annotates.
  for (const auto& [at, id] : suppressions.unused()) {
    findings.push_back(
        Finding{relpath, at, "unused-suppression",
                "suppression allow(" + id +
                    ") matched no finding on this line; remove it"});
  }
  return findings;
}

std::vector<Finding> lint_file(const std::filesystem::path& path,
                               const std::string& relpath) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("rac-lint: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_text(relpath, buffer.str());
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& subdirs) {
  std::vector<Finding> findings;
  for (const auto& subdir : subdirs) {
    const std::filesystem::path dir = root / subdir;
    if (std::filesystem::is_regular_file(dir)) {
      auto file_findings = lint_file(dir, subdir);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      continue;
    }
    if (!std::filesystem::is_directory(dir)) {
      throw std::runtime_error("rac-lint: no such directory: " +
                               dir.string());
    }
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      const auto rel =
          std::filesystem::relative(file, root).generic_string();
      auto file_findings = lint_file(file, rel);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }
  return findings;
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "{\"count\": " + std::to_string(findings.size()) +
                    ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"file\": \"";
    append_json_escaped(out, findings[i].file);
    out += "\", \"line\": " + std::to_string(findings[i].line) +
           ", \"rule\": \"";
    append_json_escaped(out, findings[i].rule);
    out += "\", \"message\": \"";
    append_json_escaped(out, findings[i].message);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

}  // namespace rac::lint
