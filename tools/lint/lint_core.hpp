// rac-lint: the project's custom static checker.
//
// A dependency-free, token/regex-level linter for the invariants this
// codebase enforces by convention but the compiler cannot:
//
//   rand              std::rand / srand / std::random_device anywhere but
//                     src/util/rng.* -- all randomness must flow through
//                     the seeded, deterministic util::Rng.
//   wall-clock        wall-clock reads (system_clock, time(nullptr),
//                     gettimeofday, clock_gettime) in src/{core,rl,env,
//                     tiersim,queueing} -- simulated subsystems must be
//                     reproducible from their inputs alone.
//   default-registry  obs::default_registry() referenced outside src/obs/
//                     -- components must take an injectable registry and
//                     resolve it via obs::registry_or_default (function-
//                     local statics pinned to the default registry were
//                     the PR 2 metrics-routing bug class).
//   raw-assert        assert( in library code -- compiled out under
//                     NDEBUG; use the RAC_EXPECT/RAC_ENSURE/RAC_INVARIANT
//                     contract macros instead.
//   iostream          std::cout / std::cerr / std::clog in src/ library
//                     code (src/util/log.cpp excepted) -- libraries report
//                     via return values, exceptions, and util::log. CLI
//                     binaries under tools/, bench/, and examples/ own
//                     their stdout and are exempt.
//   pragma-once       every header must open with #pragma once before any
//                     code.
//   include-hygiene   quoted includes must not path-traverse ("../") --
//                     all project includes are rooted at src/.
//   float-eq          == / != against a floating-point literal -- exact
//                     float comparison is almost always a bug; use an
//                     epsilon, or suppress where exactness is the point.
//   hot-path-alloc    operator new, make_unique/make_shared, or a
//                     node-based container (unordered_map, std::map,
//                     std::list, ...) in src/{queueing,tiersim,rl} -- the
//                     inner loops there are allocation-free by design
//                     (flat tables, slot arenas); cold-path sites carry a
//                     justified suppression.
//
//   unused-suppression
//                     an allow() comment that suppressed no finding on its
//                     line. Stale suppressions read as justified
//                     exemptions long after the code they excused is gone,
//                     so they fail the build instead of accumulating.
//
// Findings on a line carrying `// rac-lint: allow(<rule>[, <rule>...])`
// are suppressed for the named rules only; suppressions are expected to
// carry a justification in the same comment.
//
// The checker is deliberately line/token based: it is fast, has zero
// dependencies, and the rules it enforces are lexically recognizable by
// construction. Comment/string stripping (including raw string literals
// and backslash line continuations) comes from the srcscan tokenizer
// shared with rac-analyze, which layers real cross-file and scope-aware
// analyses on the same front end.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace rac::lint {

struct Finding {
  std::string file;  // path as passed in (repo-relative in CI)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule table, in reporting order.
const std::vector<RuleInfo>& rules();

/// Lint one file's contents. `relpath` (forward-slash, repo-relative, e.g.
/// "src/core/runner.cpp") drives the path-scoped rules; `contents` is the
/// full text. Exposed separately from lint_file so tests can lint fixture
/// text under any pretend path.
std::vector<Finding> lint_text(const std::string& relpath,
                               const std::string& contents);

/// Read and lint one file on disk, reporting it as `relpath`.
std::vector<Finding> lint_file(const std::filesystem::path& path,
                               const std::string& relpath);

/// Recursively lint every *.hpp / *.cpp / *.h / *.cc under root/<subdir>
/// for each subdir, in sorted order. Throws std::runtime_error if a subdir
/// does not exist.
std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::vector<std::string>& subdirs);

/// Machine-readable report: {"count": N, "findings": [...]}.
std::string to_json(const std::vector<Finding>& findings);

/// Human-readable "file:line: [rule] message" lines.
std::string to_text(const std::vector<Finding>& findings);

}  // namespace rac::lint
