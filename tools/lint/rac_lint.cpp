// rac-lint driver. Run as a ctest (`ctest -R rac_lint`) or by hand:
//
//   rac_lint [--root DIR] [--report FILE] [--list-rules] [path...]
//
// Paths are directories (linted recursively) or single files, relative to
// --root (default: current directory; CI passes the repo root). With no
// paths, lints src/. Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

int usage() {
  std::cerr << "usage: rac_lint [--root DIR] [--report FILE] [--list-rules]"
               " [path...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report;
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (arg == "--report") {
      if (++i >= argc) return usage();
      report = argv[i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : rac::lint::rules()) {
      std::cout << rule.id << "\t" << rule.summary << "\n";
    }
    return 0;
  }

  if (paths.empty()) paths.push_back("src");

  std::vector<rac::lint::Finding> findings;
  try {
    findings = rac::lint::lint_tree(root, paths);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (!report.empty()) {
    std::ofstream out(report);
    if (!out) {
      std::cerr << "rac-lint: cannot write report to " << report << "\n";
      return 2;
    }
    out << rac::lint::to_json(findings) << "\n";
  }

  std::cout << rac::lint::to_text(findings);
  if (findings.empty()) {
    std::cout << "rac-lint: clean\n";
    return 0;
  }
  std::cout << "rac-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
