// srcscan: the shared lexical front end of the project's static checkers.
//
// rac-lint (line/regex rules) and rac-analyze (token/scope rules) both need
// the same first pass over a C++ source file: comments and string literals
// identified and stripped, raw string literals (R"delim(...)delim") and
// backslash line continuations handled, and a token stream with line
// numbers for anything smarter than a per-line regex. Keeping that pass in
// one library means a stripper bug cannot make one checker quieter than
// the other.
//
// The scanner is error-tolerant by design: an unterminated string stops at
// end of line, an unterminated block comment or raw string runs to end of
// file. It never throws on malformed input -- the worst outcome is a
// noisier (never a quieter) downstream checker.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rac::srcscan {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (digit separators included)
  kString,   // string literal; text holds the *contents* (no quotes)
  kCharLit,  // character literal; text holds the contents
  kPunct,    // operators/punctuation, multi-char ops as one token ("::")
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based physical line where the token starts
};

/// One physical line of the input after stripping.
struct Line {
  /// The line with comments and string/char literal contents blanked to
  /// spaces (columns preserved), so per-line regex rules cannot fire on
  /// text that is data rather than code.
  std::string code;
  /// Concatenated comment text appearing on this physical line (from //,
  /// /* */, and line-continued // comments). Used for suppression parsing.
  std::string comment;
};

struct ScanResult {
  std::vector<Line> lines;   // lines[0] is line 1; count matches getline()
  std::vector<Token> tokens;
};

/// Scan a whole file. Handles //-comments (including backslash line
/// continuations), /* */ comments, string/char literals with escapes,
/// encoding prefixes (L"", u8""), raw string literals with custom
/// delimiters spanning lines, and digit separators (1'000 is a number, not
/// a char literal).
ScanResult scan(const std::string& contents);

/// Rule ids listed in `<marker> ... allow(a, b)` occurrences inside a
/// comment, e.g. marker "rac-lint:". Shared by both checkers' same-line
/// suppression syntax.
std::vector<std::string> parse_allow(const std::string& comment,
                                     std::string_view marker);

/// Tracks the same-line suppressions of one file and which of them
/// actually suppressed a finding, so stale suppressions can be reported
/// (the unused-suppression rule).
class SuppressionSet {
 public:
  SuppressionSet(const std::vector<Line>& lines, std::string_view marker);

  /// True when `rule` is allowed on `line` (1-based); marks every matching
  /// allow entry as used.
  bool allowed(int line, std::string_view rule);

  /// (line, rule-id) pairs of allow entries that never suppressed a
  /// finding, sorted by line then id. Entries that do not look like rule
  /// ids (placeholder text in documentation comments) are skipped, as is
  /// any line that also carries an `unused-suppression` allow entry.
  std::vector<std::pair<int, std::string>> unused() const;

 private:
  struct Entry {
    int line;
    std::string id;
    bool used = false;
  };
  std::vector<Entry> entries_;
};

}  // namespace rac::srcscan
