#include "tokenizer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace rac::srcscan {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Encoding prefixes that may introduce a raw string literal when followed
/// directly by a double quote.
bool raw_string_prefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

// Multi-character operators, longest first within each length class.
constexpr std::array<std::string_view, 3> kPunct3 = {"<<=", ">>=", "..."};
constexpr std::array<std::string_view, 20> kPunct2 = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  ScanResult run() {
    while (i_ < text_.size()) step();
    return std::move(res_);
  }

 private:
  Line& line(int ln) {
    while (static_cast<int>(res_.lines.size()) < ln) res_.lines.push_back({});
    return res_.lines[ln - 1];
  }

  void code_char(char c) { line(ln_).code.push_back(c); }
  void blank(std::size_t n) { line(ln_).code.append(n, ' '); }
  void comment_char(char c) { line(ln_).comment.push_back(c); }

  void newline() {
    line(ln_);  // materialize the line even if empty
    ++ln_;
    ++i_;
  }

  /// True when the character before index `at` (skipping one \r) is a
  /// backslash, i.e. the newline at `at` is escaped.
  bool escaped_newline_before(std::size_t at) const {
    std::size_t back = at;
    if (back > 0 && text_[back - 1] == '\r') --back;
    return back > 0 && text_[back - 1] == '\\';
  }

  void step() {
    const char c = text_[i_];
    if (c == '\n') {
      newline();
      return;
    }
    if (c == '/' && i_ + 1 < text_.size() && text_[i_ + 1] == '/') {
      line_comment();
      return;
    }
    if (c == '/' && i_ + 1 < text_.size() && text_[i_ + 1] == '*') {
      block_comment();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (is_digit(c) ||
        (c == '.' && i_ + 1 < text_.size() && is_digit(text_[i_ + 1]))) {
      number();
      return;
    }
    if (c == '"') {
      string_literal(ln_);
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (c == '\\' && i_ + 1 < text_.size() &&
        (text_[i_ + 1] == '\n' ||
         (text_[i_ + 1] == '\r' && i_ + 2 < text_.size() &&
          text_[i_ + 2] == '\n'))) {
      // Line continuation in code: the splice itself is whitespace.
      blank(1);
      ++i_;
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      code_char(c);
      ++i_;
      return;
    }
    punct();
  }

  void line_comment() {
    blank(2);
    i_ += 2;
    while (i_ < text_.size()) {
      if (text_[i_] == '\n') {
        const bool continued = escaped_newline_before(i_);
        newline();
        if (!continued) return;
        continue;  // the next physical line is still comment text
      }
      comment_char(text_[i_]);
      blank(1);
      ++i_;
    }
  }

  void block_comment() {
    blank(2);
    i_ += 2;
    while (i_ < text_.size()) {
      if (text_[i_] == '\n') {
        newline();
        continue;
      }
      if (text_[i_] == '*' && i_ + 1 < text_.size() &&
          text_[i_ + 1] == '/') {
        blank(2);
        i_ += 2;
        return;
      }
      comment_char(text_[i_]);
      blank(1);
      ++i_;
    }
  }

  void identifier() {
    const int start_line = ln_;
    std::string id;
    while (i_ < text_.size() && ident_char(text_[i_])) {
      id.push_back(text_[i_]);
      ++i_;
    }
    if (raw_string_prefix(id) && i_ < text_.size() && text_[i_] == '"') {
      blank(id.size());  // the prefix is part of the literal
      raw_string(start_line);
      return;
    }
    for (const char c : id) code_char(c);
    res_.tokens.push_back({TokKind::kIdent, std::move(id), start_line});
  }

  void number() {
    const int start_line = ln_;
    std::string num;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (ident_char(c) || c == '.' || c == '\'') {
        num.push_back(c);
        code_char(c);
        ++i_;
        continue;
      }
      // Exponent signs: 1e+5, 0x1p-3.
      if ((c == '+' || c == '-') && !num.empty()) {
        const char prev = num.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          num.push_back(c);
          code_char(c);
          ++i_;
          continue;
        }
      }
      break;
    }
    res_.tokens.push_back({TokKind::kNumber, std::move(num), start_line});
  }

  void string_literal(int start_line) {
    std::string contents;
    blank(1);  // opening quote
    ++i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\') {
        if (i_ + 1 < text_.size() &&
            (text_[i_ + 1] == '\n' ||
             (text_[i_ + 1] == '\r' && i_ + 2 < text_.size() &&
              text_[i_ + 2] == '\n'))) {
          // Escaped newline continues the literal on the next line.
          blank(1);
          ++i_;  // the backslash
          if (text_[i_] == '\r') {
            blank(1);
            ++i_;
          }
          newline();
          continue;
        }
        contents.push_back(c);
        blank(1);
        ++i_;
        if (i_ < text_.size() && text_[i_] != '\n') {
          contents.push_back(text_[i_]);
          blank(1);
          ++i_;
        }
        continue;
      }
      if (c == '"') {
        blank(1);
        ++i_;
        break;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      contents.push_back(c);
      blank(1);
      ++i_;
    }
    res_.tokens.push_back(
        {TokKind::kString, std::move(contents), start_line});
  }

  void raw_string(int start_line) {
    // At entry i_ points at the opening quote of R"delim( ... )delim".
    blank(1);
    ++i_;
    std::string delim;
    while (i_ < text_.size() && text_[i_] != '(' && text_[i_] != '\n') {
      delim.push_back(text_[i_]);
      blank(1);
      ++i_;
    }
    if (i_ < text_.size() && text_[i_] == '(') {
      blank(1);
      ++i_;
    }
    const std::string close = ")" + delim + "\"";
    std::string contents;
    while (i_ < text_.size()) {
      if (text_.compare(i_, close.size(), close) == 0) {
        blank(close.size());
        i_ += close.size();
        break;
      }
      if (text_[i_] == '\n') {
        contents.push_back('\n');
        newline();
        continue;
      }
      contents.push_back(text_[i_]);
      blank(1);
      ++i_;
    }
    res_.tokens.push_back(
        {TokKind::kString, std::move(contents), start_line});
  }

  void char_literal() {
    const int start_line = ln_;
    std::string contents;
    blank(1);
    ++i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\\' && i_ + 1 < text_.size()) {
        contents.push_back(c);
        contents.push_back(text_[i_ + 1]);
        blank(2);
        i_ += 2;
        continue;
      }
      if (c == '\'') {
        blank(1);
        ++i_;
        break;
      }
      if (c == '\n') break;
      contents.push_back(c);
      blank(1);
      ++i_;
    }
    res_.tokens.push_back(
        {TokKind::kCharLit, std::move(contents), start_line});
  }

  void punct() {
    const int start_line = ln_;
    for (const auto& op : kPunct3) {
      if (text_.compare(i_, op.size(), op) == 0) {
        for (const char c : op) code_char(c);
        i_ += op.size();
        res_.tokens.push_back({TokKind::kPunct, std::string(op), start_line});
        return;
      }
    }
    for (const auto& op : kPunct2) {
      if (text_.compare(i_, op.size(), op) == 0) {
        for (const char c : op) code_char(c);
        i_ += op.size();
        res_.tokens.push_back({TokKind::kPunct, std::string(op), start_line});
        return;
      }
    }
    code_char(text_[i_]);
    res_.tokens.push_back(
        {TokKind::kPunct, std::string(1, text_[i_]), start_line});
    ++i_;
  }

  const std::string& text_;
  std::size_t i_ = 0;
  int ln_ = 1;
  ScanResult res_;
};

bool looks_like_rule_id(const std::string& id) {
  if (id.empty() || !std::islower(static_cast<unsigned char>(id[0]))) {
    return false;
  }
  return std::all_of(id.begin(), id.end(), [](char c) {
    return std::islower(static_cast<unsigned char>(c)) ||
           std::isdigit(static_cast<unsigned char>(c)) || c == '-';
  });
}

}  // namespace

ScanResult scan(const std::string& contents) {
  return Scanner(contents).run();
}

std::vector<std::string> parse_allow(const std::string& comment,
                                     std::string_view marker) {
  std::vector<std::string> allowed;
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    const std::size_t open = comment.find("allow(", pos);
    if (open == std::string::npos) break;
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inner = comment.substr(open + 6, close - open - 6);
    std::size_t start = 0;
    while (start <= inner.size()) {
      std::size_t comma = inner.find(',', start);
      if (comma == std::string::npos) comma = inner.size();
      std::string id = inner.substr(start, comma - start);
      id.erase(0, id.find_first_not_of(" \t"));
      const std::size_t last = id.find_last_not_of(" \t");
      if (last != std::string::npos) id.erase(last + 1);
      if (!id.empty()) allowed.push_back(std::move(id));
      start = comma + 1;
    }
    pos = comment.find(marker, close);
  }
  return allowed;
}

SuppressionSet::SuppressionSet(const std::vector<Line>& lines,
                               std::string_view marker) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].comment.empty()) continue;
    for (auto& id : parse_allow(lines[i].comment, marker)) {
      entries_.push_back({static_cast<int>(i) + 1, std::move(id), false});
    }
  }
}

bool SuppressionSet::allowed(int line, std::string_view rule) {
  bool any = false;
  for (auto& entry : entries_) {
    if (entry.line == line && entry.id == rule) {
      entry.used = true;
      any = true;
    }
  }
  return any;
}

std::vector<std::pair<int, std::string>> SuppressionSet::unused() const {
  std::vector<std::pair<int, std::string>> out;
  for (const auto& entry : entries_) {
    if (entry.used || entry.id == "unused-suppression") continue;
    if (!looks_like_rule_id(entry.id)) continue;
    const bool line_exempt = std::any_of(
        entries_.begin(), entries_.end(), [&](const Entry& other) {
          return other.line == entry.line &&
                 other.id == "unused-suppression";
        });
    if (line_exempt) continue;
    out.emplace_back(entry.line, entry.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rac::srcscan
