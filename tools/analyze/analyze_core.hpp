// rac-analyze: the project's semantic, cross-file static analyzer.
//
// rac-lint stops at stripped-line regexes; this tool works on the srcscan
// token stream with scope tracking and cross-file graphs, and enforces the
// invariants the compiler cannot check and a per-line regex cannot see:
//
// Include/layer graph (see include_graph.hpp):
//   include-cycle   quoted-include cycle among project files.
//   layer-unknown   src/ module missing from layers.manifest.
//   layer-order     module includes a module from a higher layer.
//   layer-edge      module include edge not declared in layers.manifest.
//   layer-cycle     cycle in the observed module dependency graph.
//
// Determinism dataflow:
//   unordered-iter  range-for over an unordered_{map,set} whose body does
//                   order-dependent work: compound-assignment accumulation
//                   into outer state (floating-point sums change with
//                   visit order), last-iteration-wins assignments of the
//                   loop element, or appends to an outer container that is
//                   never sorted afterwards (the PR 4 retrain bug class:
//                   serialized output followed hash-table iteration
//                   order). Scoped to src/ and bench/ -- decision traces
//                   and bench digests are bit-compared across runs.
//   clock-reachability / rand-reachability
//                   a reproducible subsystem (src/{core,rl,env,tiersim,
//                   queueing}) calls a helper whose body -- possibly
//                   through further helpers, in any src/ file -- reaches a
//                   wall-clock read or ambient randomness. rac-lint flags
//                   the direct read; this closes the wrapper loophole.
//                   Taint sources in src/obs/, src/util/log.*, and
//                   src/util/rng.* are exempt (instrumentation and the
//                   seeded RNG own those reads by design).
//
// Parallel safety:
//   parallel-ref-capture
//                   a lambda passed to parallel_for/parallel_map captures
//                   outer state by reference and writes it without
//                   indexing by the task-index parameter. That is a data
//                   race TSan only reports when a schedule happens to
//                   expose it; the write shape is detectable statically.
//
// Findings on a line carrying `// rac-analyze: allow(<rule>)` are
// suppressed for the named rules; a suppression that suppresses nothing is
// itself a finding (unused-suppression), exactly as in rac-lint.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "include_graph.hpp"

namespace rac::analyze {

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule table, in reporting order.
const std::vector<RuleInfo>& rules();

/// One in-memory source file; relpath (forward-slash, repo-relative)
/// drives path scoping and include resolution, so tests can analyze
/// fixture text under any pretend path.
struct SourceFile {
  std::string relpath;
  std::string contents;
};

/// Analyze a file set as a unit (cross-file rules see all of it).
/// `manifest` may be null: layer rules are skipped, everything else runs.
std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const Manifest* manifest);

/// Load every *.hpp/*.cpp/*.h/*.cc under root/<subdir> (or a single file)
/// for each subdir, sorted. Throws std::runtime_error on a missing
/// subdir, matching lint_tree.
std::vector<SourceFile> load_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& subdirs);

/// Observed module-level dependency map of a file set (for the manifest
/// golden test and --write-manifest).
std::map<std::string, std::set<std::string>> observed_module_deps(
    const std::vector<SourceFile>& files);

/// Machine-readable report: {"count": N, "findings": [...]}.
std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 with one run, the full rule table, and one result per
/// finding (physicalLocation uri = repo-relative path).
std::string to_sarif(const std::vector<Finding>& findings);

/// Human-readable "file:line: [rule] message" lines.
std::string to_text(const std::vector<Finding>& findings);

}  // namespace rac::analyze
