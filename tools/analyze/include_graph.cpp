#include "include_graph.hpp"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace rac::analyze {

namespace {

const char* kManifestHeader =
    "# rac-analyze layering manifest: the checked-in module architecture "
    "of src/.\n"
    "# `layer` lines declare the ordering bottom -> top; a module may only "
    "include\n"
    "# modules from its own or a lower layer. `dep` lines are the full set "
    "of\n"
    "# observed module-level include edges; rac-analyze fails on any edge "
    "missing\n"
    "# from this list, and the layer_manifest golden test fails when this "
    "file\n"
    "# drifts from the tree. Regenerate with:\n"
    "#   rac_analyze --root . --write-manifest > "
    "tools/analyze/layers.manifest\n";

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

}  // namespace

Manifest Manifest::parse(const std::string& text) {
  Manifest m;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error("layers.manifest:" + std::to_string(line_no) +
                             ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    auto words = split_ws(line);
    if (words[0] == "layer") {
      if (words.size() < 2) fail("layer line names no modules");
      m.layers.emplace_back(words.begin() + 1, words.end());
      continue;
    }
    if (words[0] == "dep") {
      if (words.size() < 2 || words[1].empty() || words[1].back() != ':') {
        fail("dep line must read `dep <module>: [<module>...]`");
      }
      std::string module = words[1].substr(0, words[1].size() - 1);
      std::vector<std::string> targets(words.begin() + 2, words.end());
      std::sort(targets.begin(), targets.end());
      if (m.deps.count(module)) fail("duplicate dep line for " + module);
      m.deps.emplace(std::move(module), std::move(targets));
      continue;
    }
    fail("unrecognized directive `" + words[0] + "`");
  }

  // Validation: the manifest must itself describe a legal architecture.
  std::map<std::string, int> layer_index;
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    for (const auto& module : m.layers[i]) {
      if (!layer_index.emplace(module, static_cast<int>(i)).second) {
        throw std::runtime_error("layers.manifest: module " + module +
                                 " declared in two layers");
      }
    }
  }
  for (const auto& [module, targets] : m.deps) {
    const auto it = layer_index.find(module);
    if (it == layer_index.end()) {
      throw std::runtime_error("layers.manifest: dep module " + module +
                               " is not in any layer");
    }
    for (const auto& target : targets) {
      const auto jt = layer_index.find(target);
      if (jt == layer_index.end()) {
        throw std::runtime_error("layers.manifest: dep target " + target +
                                 " of " + module + " is not in any layer");
      }
      if (jt->second > it->second) {
        throw std::runtime_error(
            "layers.manifest: dep " + module + " -> " + target +
            " points up the layer stack (layer " +
            std::to_string(it->second) + " -> " +
            std::to_string(jt->second) + ")");
      }
    }
  }
  // Acyclicity of the dep graph (same-layer edges could still cycle).
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  const std::function<void(const std::string&)> visit =
      [&](const std::string& module) {
        state[module] = 1;
        const auto it = m.deps.find(module);
        if (it != m.deps.end()) {
          for (const auto& target : it->second) {
            if (state[target] == 1) {
              throw std::runtime_error(
                  "layers.manifest: dep cycle through " + module + " -> " +
                  target);
            }
            if (state[target] == 0) visit(target);
          }
        }
        state[module] = 2;
      };
  for (const auto& [module, targets] : m.deps) {
    if (state[module] == 0) visit(module);
  }
  return m;
}

std::string Manifest::serialize() const {
  std::string out = kManifestHeader;
  for (const auto& layer : layers) {
    out += "layer";
    for (const auto& module : layer) out += " " + module;
    out += "\n";
  }
  for (const auto& layer : layers) {
    for (const auto& module : layer) {
      out += "dep " + module + ":";
      const auto it = deps.find(module);
      if (it != deps.end()) {
        for (const auto& target : it->second) out += " " + target;
      }
      out += "\n";
    }
  }
  return out;
}

int Manifest::layer_of(std::string_view module) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const auto& m : layers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  return -1;
}

std::string IncludeGraph::module_of(std::string_view relpath) {
  if (!relpath.starts_with("src/")) return {};
  const std::string_view rest = relpath.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

void IncludeGraph::add_file(const std::string& relpath,
                            const std::vector<srcscan::Token>& tokens) {
  files_.insert(relpath);
  auto& raw = raw_[relpath];
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    using srcscan::TokKind;
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == "#" &&
        tokens[i + 1].kind == TokKind::kIdent &&
        tokens[i + 1].text == "include" &&
        tokens[i + 2].kind == TokKind::kString) {
      raw.push_back({tokens[i + 2].text, tokens[i + 2].line});
    }
  }
}

void IncludeGraph::resolve() {
  edges_.clear();
  for (const auto& [from, raws] : raw_) {
    for (const auto& inc : raws) {
      // Project includes are rooted at src/; the tools trees use plain
      // same-directory includes. Unresolved targets are external headers.
      std::string target = "src/" + inc.target;
      if (!files_.count(target)) {
        const std::string dir = dirname_of(from);
        target = dir.empty() ? inc.target : dir + "/" + inc.target;
        if (!files_.count(target)) continue;
      }
      edges_.push_back({from, target, inc.line});
    }
  }
}

std::map<std::string, std::set<std::string>> IncludeGraph::module_deps()
    const {
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& file : files_) {
    const std::string module = module_of(file);
    if (!module.empty()) deps[module];  // modules with no deps still exist
  }
  for (const auto& edge : edges_) {
    const std::string from = module_of(edge.from_file);
    const std::string to = module_of(edge.to_file);
    if (from.empty() || to.empty() || from == to) continue;
    deps[from].insert(to);
  }
  return deps;
}

std::vector<Finding> IncludeGraph::check_layers(
    const Manifest& manifest) const {
  std::vector<Finding> findings;
  // First witness (file, line) per module edge, deterministic because
  // edges_ derives from the sorted raw_ map.
  std::map<std::pair<std::string, std::string>, const IncludeEdge*> witness;
  for (const auto& edge : edges_) {
    const std::string from = module_of(edge.from_file);
    const std::string to = module_of(edge.to_file);
    if (from.empty() || to.empty() || from == to) continue;
    witness.emplace(std::make_pair(from, to), &edge);
  }

  std::set<std::string> unknown_reported;
  const auto report_unknown = [&](const std::string& module,
                                  const std::string& file, int line) {
    if (!unknown_reported.insert(module).second) return;
    findings.push_back(
        {file, line, "layer-unknown",
         "module '" + module +
             "' is not declared in layers.manifest; add it to a layer "
             "line"});
  };

  for (const auto& file : files_) {
    const std::string module = module_of(file);
    if (!module.empty() && manifest.layer_of(module) < 0) {
      report_unknown(module, file, 1);
    }
  }

  for (const auto& [key, edge] : witness) {
    const auto& [from, to] = key;
    const int from_layer = manifest.layer_of(from);
    const int to_layer = manifest.layer_of(to);
    if (from_layer < 0) {
      report_unknown(from, edge->from_file, edge->line);
      continue;
    }
    if (to_layer < 0) {
      report_unknown(to, edge->from_file, edge->line);
      continue;
    }
    if (to_layer > from_layer) {
      findings.push_back(
          {edge->from_file, edge->line, "layer-order",
           "module '" + from + "' (layer " + std::to_string(from_layer) +
               ") includes '" + to + "' (layer " + std::to_string(to_layer) +
               "): dependencies must not point up the layer stack"});
      continue;
    }
    const auto it = manifest.deps.find(from);
    const bool listed =
        it != manifest.deps.end() &&
        std::find(it->second.begin(), it->second.end(), to) !=
            it->second.end();
    if (!listed) {
      findings.push_back(
          {edge->from_file, edge->line, "layer-edge",
           "include edge " + from + " -> " + to +
               " is not declared in layers.manifest; regenerate with "
               "`rac_analyze --write-manifest` if the edge is intended"});
    }
  }

  // Module-level cycles in the observed graph (a module cycle need not be
  // a file cycle: core/a.hpp -> baselines/x.hpp and baselines/y.hpp ->
  // core/b.hpp cycles the modules with no file-level loop).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : witness) adj[key.first].push_back(key.second);
  std::map<std::string, int> state;
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& module) {
        state[module] = 1;
        stack.push_back(module);
        for (const auto& next : adj[module]) {
          if (state[next] == 1) {
            std::string path = next;
            for (auto it = std::find(stack.begin(), stack.end(), next);
                 it != stack.end(); ++it) {
              if (*it != next) path += " -> " + *it;
            }
            path += " -> " + next;
            const IncludeEdge* edge = witness.at({module, next});
            findings.push_back({edge->from_file, edge->line, "layer-cycle",
                                "module dependency cycle: " + path});
          } else if (state[next] == 0) {
            visit(next);
          }
        }
        stack.pop_back();
        state[module] = 2;
      };
  for (const auto& [module, targets] : adj) {
    if (state[module] == 0) visit(module);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> IncludeGraph::find_cycles() const {
  // DFS over the file graph in sorted order; every back edge closes one
  // cycle and yields one finding at the offending #include.
  std::map<std::string, std::vector<const IncludeEdge*>> adj;
  for (const auto& edge : edges_) adj[edge.from_file].push_back(&edge);

  std::vector<Finding> findings;
  std::map<std::string, int> state;
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& file) {
        state[file] = 1;
        stack.push_back(file);
        for (const IncludeEdge* edge : adj[file]) {
          if (state[edge->to_file] == 1) {
            std::string path = edge->to_file;
            for (auto it =
                     std::find(stack.begin(), stack.end(), edge->to_file);
                 it != stack.end(); ++it) {
              if (*it != edge->to_file) path += " -> " + *it;
            }
            path += " -> " + edge->to_file;
            findings.push_back({edge->from_file, edge->line, "include-cycle",
                                "include cycle: " + path});
          } else if (state[edge->to_file] == 0) {
            visit(edge->to_file);
          }
        }
        stack.pop_back();
        state[file] = 2;
      };
  for (const auto& file : files_) {
    if (state[file] == 0) visit(file);
  }
  return findings;
}

std::string regenerate_manifest(
    const Manifest& manifest,
    const std::map<std::string, std::set<std::string>>& observed) {
  Manifest regenerated;
  regenerated.layers = manifest.layers;
  for (const auto& [module, targets] : observed) {
    regenerated.deps[module] =
        std::vector<std::string>(targets.begin(), targets.end());
  }
  return regenerated.serialize();
}

}  // namespace rac::analyze
