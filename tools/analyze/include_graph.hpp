// Include/layer-graph analysis for rac-analyze.
//
// Parses quoted #include directives out of the token stream of every
// analyzed file, resolves them against the file set (project includes are
// rooted at src/, with a same-directory fallback for the tools trees),
// and checks the resulting graph two ways:
//
//   include-cycle  a cycle among project files at file granularity.
//   layer-*        the module-level DAG of src/ (module = first path
//                  component under src/) against the checked-in layering
//                  manifest tools/analyze/layers.manifest: unknown
//                  modules, edges pointing up the layer stack, edges not
//                  declared in the manifest, and module-level cycles.
//
// The manifest is both policy (the `layer` ordering) and a golden record
// (the `dep` edge list): architectural drift shows up as a one-line
// manifest diff in review rather than as silent coupling growth.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tokenizer.hpp"

namespace rac::analyze {

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// Parsed layers.manifest: `layer` lines order module groups bottom to
/// top; `dep` lines enumerate the allowed module-level include edges.
struct Manifest {
  /// layers[i] holds the modules of layer i, bottom (0) first.
  std::vector<std::vector<std::string>> layers;
  /// module -> sorted list of modules it may include.
  std::map<std::string, std::vector<std::string>> deps;

  /// Throws std::runtime_error on malformed text, modules missing from
  /// the layer lines, dep edges pointing up the layer stack, or a cyclic
  /// dep graph: the manifest itself must describe a legal architecture.
  static Manifest parse(const std::string& text);

  /// Canonical text form (fixed header comment, `layer` lines, `dep`
  /// lines in layer order with sorted edge lists). parse(serialize())
  /// round-trips; the golden test compares byte-for-byte.
  std::string serialize() const;

  /// Layer index of a module, or -1 when not declared.
  int layer_of(std::string_view module) const;
};

struct IncludeEdge {
  std::string from_file;
  std::string to_file;
  int line = 0;  // line of the #include in from_file
};

class IncludeGraph {
 public:
  /// Register one file's token stream (quoted includes are the token
  /// triple `#` `include` <string>). Call for every file, then resolve().
  void add_file(const std::string& relpath,
                const std::vector<srcscan::Token>& tokens);

  /// Resolve include targets against the registered file set.
  void resolve();

  const std::vector<IncludeEdge>& edges() const { return edges_; }

  /// Observed module-level dependencies of src/ files:
  /// module -> set of distinct modules it includes.
  std::map<std::string, std::set<std::string>> module_deps() const;

  /// layer-unknown / layer-order / layer-edge / layer-cycle findings for
  /// the observed module graph against `manifest`.
  std::vector<Finding> check_layers(const Manifest& manifest) const;

  /// include-cycle findings at file granularity.
  std::vector<Finding> find_cycles() const;

  /// Module of a repo-relative path: "util" for "src/util/rng.hpp",
  /// "" for anything not under src/.
  static std::string module_of(std::string_view relpath);

 private:
  struct RawInclude {
    std::string target;  // quoted path as written
    int line = 0;
  };

  std::set<std::string> files_;
  std::map<std::string, std::vector<RawInclude>> raw_;
  std::vector<IncludeEdge> edges_;
};

/// Canonical manifest text with `layer` lines taken from `manifest` and
/// `dep` lines regenerated from the observed module graph. Drift repair is
/// `rac_analyze --write-manifest > tools/analyze/layers.manifest`.
std::string regenerate_manifest(
    const Manifest& manifest,
    const std::map<std::string, std::set<std::string>>& observed);

}  // namespace rac::analyze
