// rac-analyze driver. Run as a ctest (`ctest -R rac_analyze`) or by hand:
//
//   rac_analyze [--root DIR] [--manifest FILE] [--report FILE]
//               [--sarif FILE] [--list-rules] [--write-manifest] [path...]
//
// Paths are directories (analyzed recursively as one cross-file unit) or
// single files, relative to --root (default: current directory; CI passes
// the repo root). With no paths, analyzes src/. --manifest defaults to
// tools/analyze/layers.manifest under --root; pass `none` to skip the
// layer rules. --write-manifest prints the canonical manifest regenerated
// from the observed include graph (layer policy kept from the existing
// manifest) and exits. Exit status: 0 clean, 1 findings, 2 usage/IO error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_core.hpp"

namespace {

int usage() {
  std::cerr << "usage: rac_analyze [--root DIR] [--manifest FILE|none]"
               " [--report FILE] [--sarif FILE] [--list-rules]"
               " [--write-manifest] [path...]\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& contents,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "rac-analyze: cannot write " << what << " to " << path
              << "\n";
    return false;
  }
  out << contents << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string manifest_path;
  std::string report;
  std::string sarif;
  std::vector<std::string> paths;
  bool list_rules = false;
  bool write_manifest = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (arg == "--manifest") {
      if (++i >= argc) return usage();
      manifest_path = argv[i];
    } else if (arg == "--report") {
      if (++i >= argc) return usage();
      report = argv[i];
    } else if (arg == "--sarif") {
      if (++i >= argc) return usage();
      sarif = argv[i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--write-manifest") {
      write_manifest = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : rac::analyze::rules()) {
      std::cout << rule.id << "\t" << rule.summary << "\n";
    }
    return 0;
  }

  if (paths.empty()) paths.push_back("src");
  if (manifest_path.empty()) {
    manifest_path = root + "/tools/analyze/layers.manifest";
  }

  rac::analyze::Manifest manifest;
  bool have_manifest = false;
  if (manifest_path != "none") {
    std::ifstream in(manifest_path);
    if (!in) {
      std::cerr << "rac-analyze: cannot open manifest " << manifest_path
                << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      manifest = rac::analyze::Manifest::parse(buffer.str());
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    have_manifest = true;
  }

  std::vector<rac::analyze::SourceFile> files;
  try {
    files = rac::analyze::load_tree(root, paths);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (write_manifest) {
    if (!have_manifest) {
      std::cerr << "rac-analyze: --write-manifest needs an existing"
                   " manifest for the layer policy\n";
      return 2;
    }
    std::cout << rac::analyze::regenerate_manifest(
        manifest, rac::analyze::observed_module_deps(files));
    return 0;
  }

  std::vector<rac::analyze::Finding> findings;
  try {
    findings = rac::analyze::analyze_sources(
        files, have_manifest ? &manifest : nullptr);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (!report.empty() &&
      !write_file(report, rac::analyze::to_json(findings), "report")) {
    return 2;
  }
  if (!sarif.empty() &&
      !write_file(sarif, rac::analyze::to_sarif(findings), "sarif")) {
    return 2;
  }

  std::cout << rac::analyze::to_text(findings);
  if (findings.empty()) {
    std::cout << "rac-analyze: clean\n";
    return 0;
  }
  std::cout << "rac-analyze: " << findings.size() << " finding(s)\n";
  return 1;
}
