#include "analyze_core.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace rac::analyze {

namespace {

using srcscan::TokKind;
using srcscan::Token;

bool path_starts_with(std::string_view path, std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.substr(0, prefix.size()) == prefix;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

const std::set<std::string>& call_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",     "switch",   "catch",
      "return",   "sizeof",   "decltype",  "alignof",  "alignas",
      "noexcept", "new",      "delete",    "throw",    "co_await",
      "co_return", "co_yield", "static_assert", "assert", "defined",
      "int",      "double",   "float",     "bool",     "char",
      "long",     "short",    "unsigned",  "signed",   "void",
      "auto"};
  return kw;
}

/// Index of the matching close token, or -1. Handles only the named
/// open/close pair; `>>` counts as two closes when matching angles.
int match_forward(const std::vector<Token>& toks, std::size_t at,
                  std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t i = at; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return static_cast<int>(i);
    } else if (open == "<" && toks[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return static_cast<int>(i);
    } else if (open == "<" &&
               (toks[i].text == ";" || toks[i].text == "{")) {
      return -1;  // not a template argument list after all
    }
  }
  return -1;
}

/// Index of the '(' matching the ')' at `at`, or -1.
int match_back_paren(const std::vector<Token>& toks, std::size_t at) {
  int depth = 0;
  for (int i = static_cast<int>(at); i >= 0; --i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == ")") ++depth;
    if (toks[i].text == "(" && --depth == 0) return i;
  }
  return -1;
}

/// For a '{' at index `at`, the index of the identifier naming the
/// function whose body it opens, or -1 when the brace opens something
/// else (class, namespace, initializer, control statement, lambda --
/// lambda bodies stay attributed to their enclosing function).
int function_name_for_brace(const std::vector<Token>& toks, std::size_t at) {
  int k = static_cast<int>(at) - 1;
  int walked = 0;
  while (k >= 0 && walked < 48) {
    const Token& t = toks[k];
    if (t.kind == TokKind::kIdent &&
        (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
         t.text == "final" || t.text == "mutable" || t.text == "try")) {
      --k;
      ++walked;
      continue;
    }
    if (is_punct(t, ")")) {
      const int open = match_back_paren(toks, k);
      if (open <= 0) return -1;
      const Token& before = toks[open - 1];
      if (is_ident(before, "noexcept")) {  // noexcept(...) specifier
        k = open - 2;
        ++walked;
        continue;
      }
      if (before.kind == TokKind::kIdent &&
          !call_keywords().count(before.text)) {
        return open - 1;
      }
      return -1;
    }
    // Trailing-return-type tokens between ')' and '{'.
    if (t.kind == TokKind::kIdent || t.kind == TokKind::kNumber ||
        (t.kind == TokKind::kPunct &&
         (t.text == "->" || t.text == "::" || t.text == "<" ||
          t.text == ">" || t.text == ">>" || t.text == "&" ||
          t.text == "*" || t.text == "," || t.text == "..."))) {
      --k;
      ++walked;
      continue;
    }
    return -1;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Per-file scope-aware pass: container declarations, range-for bodies,
// parallel lambda captures, function definitions/calls/taints.
// ---------------------------------------------------------------------------

enum class VarKind { kUnordered, kOrderedAssoc };

struct CallSite {
  std::string callee;
  int line = 0;
};

struct TaintSite {
  std::string kind;  // "clock" or "rand"
  std::string what;  // the offending token
  int line = 0;
};

struct FuncRec {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<CallSite> calls;
  std::vector<TaintSite> taints;
};

struct FileAnalysis {
  std::vector<Finding> findings;   // unordered-iter / parallel-ref-capture
  std::vector<FuncRec> functions;  // for cross-file reachability
};

bool unordered_container_name(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

bool ordered_assoc_name(std::string_view id) {
  return id == "map" || id == "set" || id == "multimap" ||
         id == "multiset";
}

bool compound_assign(std::string_view op) {
  return op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
         op == "%=" || op == "&=" || op == "|=" || op == "^=";
}

bool appending_method(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "append" ||
         id == "push";
}

bool inserting_method(std::string_view id) {
  return id == "insert" || id == "emplace";
}

bool mutating_method(std::string_view id) {
  return appending_method(id) || inserting_method(id) || id == "erase" ||
         id == "clear" || id == "resize" || id == "pop_back";
}

class FileAnalyzer {
 public:
  FileAnalyzer(const std::string& relpath, const std::vector<Token>& toks)
      : file_(relpath), toks_(toks) {}

  FileAnalysis run() {
    scopes_.emplace_back();
    prescan_container_decls();
    const bool check_unordered = path_starts_with(file_, "src/") ||
                                 path_starts_with(file_, "bench/");
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (is_punct(t, "{")) {
        open_brace(i);
        continue;
      }
      if (is_punct(t, "}")) {
        close_brace();
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      if (unordered_container_name(t.text) || ordered_assoc_name(t.text)) {
        try_register_container_decl(i);
      }
      if (check_unordered && t.text == "for") {
        try_range_for(i);
      }
      if (t.text == "parallel_for" || t.text == "parallel_map") {
        try_parallel_site(i);
      }
      record_call_or_taint(i);
    }
    return std::move(out_);
  }

 private:
  // --- scope bookkeeping --------------------------------------------------

  void open_brace(std::size_t at) {
    const int name_idx = function_name_for_brace(toks_, at);
    if (name_idx >= 0) {
      out_.functions.push_back(FuncRec{toks_[name_idx].text, file_,
                                       toks_[name_idx].line,
                                       {},
                                       {}});
      fn_stack_.push_back({out_.functions.size() - 1, depth_});
    }
    ++depth_;
    scopes_.emplace_back();
  }

  void close_brace() {
    if (depth_ > 0) --depth_;
    if (scopes_.size() > 1) scopes_.pop_back();
    if (!fn_stack_.empty() && fn_stack_.back().second == depth_) {
      fn_stack_.pop_back();
    }
  }

  FuncRec* current_fn() {
    if (fn_stack_.empty()) return nullptr;
    return &out_.functions[fn_stack_.back().first];
  }

  const VarKind* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    // Fall back to the whole-file pre-pass: class members conventionally
    // sit below the methods that use them, out of lexical-scope reach.
    const auto found = file_decls_.find(name);
    return found != file_decls_.end() ? &found->second : nullptr;
  }

  /// Whole-file pass registering every container declaration by name,
  /// regardless of position. Names declared with conflicting kinds are
  /// dropped as ambiguous.
  void prescan_container_decls() {
    std::set<std::string> ambiguous;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      const bool unordered = unordered_container_name(toks_[i].text);
      if (!unordered && !ordered_assoc_name(toks_[i].text)) continue;
      const int name_idx = container_decl_name(i);
      if (name_idx < 0) continue;
      const std::string& name = toks_[name_idx].text;
      const VarKind kind =
          unordered ? VarKind::kUnordered : VarKind::kOrderedAssoc;
      const auto it = file_decls_.find(name);
      if (it == file_decls_.end()) {
        file_decls_.emplace(name, kind);
      } else if (it->second != kind) {
        ambiguous.insert(name);
      }
    }
    for (const auto& name : ambiguous) file_decls_.erase(name);
  }

  /// Index of the name declared by `unordered_map<...> name` (optionally
  /// `&`/`*`/const-qualified) with the container token at `at`, or -1.
  int container_decl_name(std::size_t at) const {
    std::size_t i = at + 1;
    if (i >= toks_.size() || !is_punct(toks_[i], "<")) return -1;
    const int close = match_forward(toks_, i, "<", ">");
    if (close < 0) return -1;
    i = static_cast<std::size_t>(close) + 1;
    while (i < toks_.size() &&
           (is_punct(toks_[i], "&") || is_punct(toks_[i], "*") ||
            is_ident(toks_[i], "const"))) {
      ++i;
    }
    if (i >= toks_.size() || toks_[i].kind != TokKind::kIdent) return -1;
    return static_cast<int>(i);
  }

  void try_register_container_decl(std::size_t at) {
    const int name_idx = container_decl_name(at);
    if (name_idx < 0) return;
    scopes_.back()[toks_[name_idx].text] =
        unordered_container_name(toks_[at].text) ? VarKind::kUnordered
                                                 : VarKind::kOrderedAssoc;
  }

  /// For a '.' or '->' at `j`, the method name called at the end of the
  /// member chain (`snap.lines.push_back(` resolves to "push_back"), or ""
  /// when the chain ends without a call.
  std::string terminal_method(std::size_t j, std::size_t end) const {
    while (j + 1 < end &&
           (is_punct(toks_[j], ".") || is_punct(toks_[j], "->")) &&
           toks_[j + 1].kind == TokKind::kIdent) {
      if (j + 2 < end && is_punct(toks_[j + 2], "(")) {
        return toks_[j + 1].text;
      }
      j += 2;
      while (j < end && is_punct(toks_[j], "[")) {
        const int close = match_forward(toks_, j, "[", "]");
        if (close < 0) return {};
        j = static_cast<std::size_t>(close) + 1;
      }
    }
    return {};
  }

  // --- shared body helpers ------------------------------------------------

  /// Names declared inside [begin, end): a crude but effective decl
  /// heuristic (type-ish token, then the name, then `=;{,(`), plus
  /// structured bindings.
  std::set<std::string> collect_local_decls(std::size_t begin,
                                            std::size_t end) const {
    std::set<std::string> locals;
    for (std::size_t i = begin; i < end; ++i) {
      const Token& t = toks_[i];
      if (is_punct(t, "[") && i > begin &&
          (is_ident(toks_[i - 1], "auto") || is_punct(toks_[i - 1], "&"))) {
        for (std::size_t j = i + 1;
             j < end && !is_punct(toks_[j], "]"); ++j) {
          if (toks_[j].kind == TokKind::kIdent) locals.insert(toks_[j].text);
        }
        continue;
      }
      if (t.kind != TokKind::kIdent || call_keywords().count(t.text)) {
        continue;
      }
      if (i + 1 >= end || i == begin) continue;
      const Token& next = toks_[i + 1];
      const Token& prev = toks_[i - 1];
      const bool decl_tail = is_punct(next, "=") || is_punct(next, ";") ||
                             is_punct(next, "{") || is_punct(next, "(") ||
                             is_punct(next, ",");
      const bool decl_head =
          (prev.kind == TokKind::kIdent && prev.text != "return") ||
          is_punct(prev, ">") || is_punct(prev, "&") || is_punct(prev, "*");
      if (decl_tail && decl_head) locals.insert(t.text);
    }
    return locals;
  }

  /// Consume a chain of subscripts starting at `i` (which must point at
  /// '['); returns one past the final ']' and records whether any
  /// subscript mentions `needle`.
  std::size_t consume_subscripts(std::size_t i, const std::string& needle,
                                 bool* mentions) const {
    while (i < toks_.size() && is_punct(toks_[i], "[")) {
      const int close = match_forward(toks_, i, "[", "]");
      if (close < 0) return toks_.size();
      for (std::size_t j = i + 1; j < static_cast<std::size_t>(close); ++j) {
        if (!needle.empty() && toks_[j].kind == TokKind::kIdent &&
            toks_[j].text == needle) {
          *mentions = true;
        }
      }
      i = static_cast<std::size_t>(close) + 1;
    }
    return i;
  }

  /// True when, between `from` and the end of the enclosing scope, `name`
  /// appears inside the argument list of a sort/stable_sort call: the
  /// canonical "collect then sort" fix for iteration-order bugs.
  bool sorted_afterwards(std::size_t from, const std::string& name) const {
    int depth = 0;
    for (std::size_t i = from; i < toks_.size(); ++i) {
      if (is_punct(toks_[i], "{")) ++depth;
      if (is_punct(toks_[i], "}")) {
        if (depth == 0) return false;
        --depth;
      }
      if (toks_[i].kind == TokKind::kIdent &&
          (toks_[i].text == "sort" || toks_[i].text == "stable_sort") &&
          i + 1 < toks_.size() && is_punct(toks_[i + 1], "(")) {
        const int close = match_forward(toks_, i + 1, "(", ")");
        for (std::size_t j = i + 2;
             close > 0 && j < static_cast<std::size_t>(close); ++j) {
          if (toks_[j].kind == TokKind::kIdent && toks_[j].text == name) {
            return true;
          }
        }
      }
    }
    return false;
  }

  // --- rule: unordered-iter ----------------------------------------------

  void try_range_for(std::size_t at) {
    if (at + 1 >= toks_.size() || !is_punct(toks_[at + 1], "(")) return;
    const int close = match_forward(toks_, at + 1, "(", ")");
    if (close < 0) return;
    // Top-level ':' between the parens marks a range-for ('::' is its own
    // token, so a plain ':' is unambiguous).
    int colon = -1;
    int depth = 0;
    for (std::size_t i = at + 2; i < static_cast<std::size_t>(close); ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      if (toks_[i].text == "(" || toks_[i].text == "[" ||
          toks_[i].text == "{") {
        ++depth;
      } else if (toks_[i].text == ")" || toks_[i].text == "]" ||
                 toks_[i].text == "}") {
        --depth;
      } else if (depth == 0 && toks_[i].text == ";") {
        return;  // classic for
      } else if (depth == 0 && toks_[i].text == ":") {
        colon = static_cast<int>(i);
        break;
      }
    }
    if (colon < 0) return;

    // Loop variable names (structured bindings included).
    std::set<std::string> loop_vars;
    for (std::size_t i = at + 2; i < static_cast<std::size_t>(colon); ++i) {
      if (toks_[i].kind == TokKind::kIdent &&
          !call_keywords().count(toks_[i].text) &&
          toks_[i].text != "const") {
        loop_vars.insert(toks_[i].text);
      }
    }

    // The iterated expression's root identifier.
    std::string root;
    for (std::size_t i = colon + 1; i < static_cast<std::size_t>(close);
         ++i) {
      if (toks_[i].kind == TokKind::kIdent) {
        root = toks_[i].text;
        break;
      }
    }
    if (root.empty()) return;
    const VarKind* kind = lookup(root);
    if (kind == nullptr || *kind != VarKind::kUnordered) return;

    // Body range.
    std::size_t body_begin = static_cast<std::size_t>(close) + 1;
    std::size_t body_end;
    if (body_begin < toks_.size() && is_punct(toks_[body_begin], "{")) {
      const int end = match_forward(toks_, body_begin, "{", "}");
      if (end < 0) return;
      body_end = static_cast<std::size_t>(end);
      ++body_begin;
    } else {
      body_end = body_begin;
      while (body_end < toks_.size() && !is_punct(toks_[body_end], ";")) {
        ++body_end;
      }
    }

    const std::set<std::string> locals =
        collect_local_decls(body_begin, body_end);
    const auto is_exempt = [&](const std::string& name) {
      return locals.count(name) || loop_vars.count(name);
    };

    for (std::size_t i = body_begin; i < body_end; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent || call_keywords().count(t.text)) {
        continue;
      }
      if (i > 0 && (is_punct(toks_[i - 1], ".") ||
                    is_punct(toks_[i - 1], "->") ||
                    is_punct(toks_[i - 1], "::"))) {
        continue;  // handled via the base identifier
      }
      if (is_exempt(t.text)) continue;
      bool subscripted = false;
      bool dummy = false;
      std::size_t j = i + 1;
      if (j < body_end && is_punct(toks_[j], "[")) {
        subscripted = true;
        j = consume_subscripts(j, "", &dummy);
      }
      if (j >= body_end) break;
      if (toks_[j].kind == TokKind::kPunct &&
          compound_assign(toks_[j].text)) {
        out_.findings.push_back(
            {file_, t.line, "unordered-iter",
             "range-for over unordered container '" + root +
                 "' accumulates into '" + t.text + "' with " + toks_[j].text +
                 ": the result depends on hash-table iteration order; "
                 "iterate a sorted copy or accumulate order-independent "
                 "state"});
        continue;
      }
      if (!subscripted && is_punct(toks_[j], "=")) {
        bool rhs_uses_element = false;
        for (std::size_t r = j + 1;
             r < body_end && !is_punct(toks_[r], ";"); ++r) {
          if (toks_[r].kind == TokKind::kIdent &&
              loop_vars.count(toks_[r].text)) {
            rhs_uses_element = true;
            break;
          }
        }
        if (rhs_uses_element) {
          out_.findings.push_back(
              {file_, t.line, "unordered-iter",
               "range-for over unordered container '" + root +
                   "' assigns the visited element into '" + t.text +
                   "': which element wins depends on hash-table iteration "
                   "order; iterate a sorted copy or reduce with an "
                   "order-independent criterion"});
        }
        continue;
      }
      if (is_punct(toks_[j], ".") || is_punct(toks_[j], "->")) {
        const std::string method = terminal_method(j, body_end);
        const bool appends = appending_method(method);
        const bool inserts = inserting_method(method);
        if (!appends && !inserts) continue;
        const VarKind* target_kind = lookup(t.text);
        if (inserts && target_kind != nullptr &&
            *target_kind == VarKind::kOrderedAssoc) {
          continue;  // re-keying into an ordered container is a sort
        }
        if (sorted_afterwards(body_end + 1, t.text)) continue;
        out_.findings.push_back(
            {file_, t.line, "unordered-iter",
             "range-for over unordered container '" + root + "' " +
                 (appends ? "appends to" : "inserts into") + " '" + t.text +
                 "' which is never sorted afterwards: its contents will "
                 "follow hash-table iteration order (the retrain "
                 "serialization bug class); sort it or iterate a sorted "
                 "copy"});
      }
    }
  }

  // --- rule: parallel-ref-capture ----------------------------------------

  void try_parallel_site(std::size_t at) {
    if (at + 1 >= toks_.size() || !is_punct(toks_[at + 1], "(")) return;
    const int close = match_forward(toks_, at + 1, "(", ")");
    if (close < 0) return;
    for (std::size_t i = at + 2; i < static_cast<std::size_t>(close); ++i) {
      if (!is_punct(toks_[i], "[")) continue;
      // A '[' after an identifier, ')' or ']' is a subscript, not a
      // lambda introducer.
      const Token& prev = toks_[i - 1];
      if (prev.kind == TokKind::kIdent || is_punct(prev, ")") ||
          is_punct(prev, "]")) {
        continue;
      }
      i = analyze_lambda(i, static_cast<std::size_t>(close));
    }
  }

  /// Analyze the lambda whose introducer '[' sits at `lb`; returns the
  /// index to resume the enclosing scan from.
  std::size_t analyze_lambda(std::size_t lb, std::size_t limit) {
    const int rb = match_forward(toks_, lb, "[", "]");
    if (rb < 0) return limit;

    bool default_ref = false;
    std::set<std::string> ref_caps;
    for (std::size_t i = lb + 1; i < static_cast<std::size_t>(rb); ++i) {
      if (is_punct(toks_[i], "&")) {
        if (i + 1 < static_cast<std::size_t>(rb) &&
            toks_[i + 1].kind == TokKind::kIdent) {
          ref_caps.insert(toks_[i + 1].text);
          ++i;
        } else {
          default_ref = true;
        }
      }
    }

    // Parameter list.
    std::vector<std::string> params;
    std::size_t i = static_cast<std::size_t>(rb) + 1;
    if (i < toks_.size() && is_punct(toks_[i], "(")) {
      const int pc = match_forward(toks_, i, "(", ")");
      if (pc < 0) return limit;
      std::string last_ident;
      int depth = 0;
      for (std::size_t j = i + 1; j < static_cast<std::size_t>(pc); ++j) {
        if (toks_[j].kind == TokKind::kPunct) {
          if (toks_[j].text == "<" || toks_[j].text == "(") ++depth;
          if (toks_[j].text == ">" || toks_[j].text == ")") --depth;
          if (toks_[j].text == ">>") depth -= 2;
          if (depth == 0 && toks_[j].text == ",") {
            if (!last_ident.empty()) params.push_back(last_ident);
            last_ident.clear();
          }
          continue;
        }
        if (toks_[j].kind == TokKind::kIdent) last_ident = toks_[j].text;
      }
      if (!last_ident.empty()) params.push_back(last_ident);
      i = static_cast<std::size_t>(pc) + 1;
    }
    const std::string index_param = params.empty() ? "" : params.front();

    // Skip specifiers / trailing return type up to the body.
    while (i < toks_.size() && !is_punct(toks_[i], "{")) {
      if (is_punct(toks_[i], ";") || is_punct(toks_[i], ")")) return i;
      ++i;
    }
    if (i >= toks_.size()) return i;
    const int body_close = match_forward(toks_, i, "{", "}");
    if (body_close < 0) return toks_.size();
    const std::size_t body_begin = i + 1;
    const std::size_t body_end = static_cast<std::size_t>(body_close);

    const std::set<std::string> locals =
        collect_local_decls(body_begin, body_end);
    const auto by_ref = [&](const std::string& name) {
      if (locals.count(name)) return false;
      if (std::find(params.begin(), params.end(), name) != params.end()) {
        return false;
      }
      return default_ref || ref_caps.count(name) > 0;
    };
    const std::string capture_style = default_ref ? "[&]" : "[&name]";

    for (std::size_t k = body_begin; k < body_end; ++k) {
      const Token& t = toks_[k];
      if (t.kind != TokKind::kIdent || call_keywords().count(t.text)) {
        continue;
      }
      if (k > 0 && (is_punct(toks_[k - 1], ".") ||
                    is_punct(toks_[k - 1], "->") ||
                    is_punct(toks_[k - 1], "::"))) {
        continue;
      }
      if (!by_ref(t.text)) continue;

      const bool pre_incr = k > 0 && (is_punct(toks_[k - 1], "++") ||
                                      is_punct(toks_[k - 1], "--"));
      bool indexed = false;
      std::size_t j = k + 1;
      if (j < body_end && is_punct(toks_[j], "[")) {
        j = consume_subscripts(j, index_param, &indexed);
      }
      if (j >= body_end) break;

      const bool assigns =
          pre_incr ||
          (toks_[j].kind == TokKind::kPunct &&
           (toks_[j].text == "=" || compound_assign(toks_[j].text) ||
            toks_[j].text == "++" || toks_[j].text == "--"));
      std::string method;
      if (is_punct(toks_[j], ".") || is_punct(toks_[j], "->")) {
        method = terminal_method(j, body_end);
        if (!mutating_method(method)) method.clear();
      }
      if ((assigns || !method.empty()) && !indexed) {
        const std::string how =
            method.empty() ? "writes it" : "mutates it via ." + method + "()";
        out_.findings.push_back(
            {file_, t.line, "parallel-ref-capture",
             "lambda passed to parallel_for/parallel_map captures '" +
                 t.text + "' by reference (" + capture_style + ") and " +
                 how +
                 (index_param.empty()
                      ? " with no task-index parameter to disambiguate "
                        "slots"
                      : " without indexing by the task index '" +
                            index_param + "'") +
                 ": concurrent tasks race on it (TSan only catches the "
                 "schedules that interleave); write to a per-index slot "
                 "instead"});
      }
    }
    return body_end;
  }

  // --- function defs / calls / taints for reachability --------------------

  void record_call_or_taint(std::size_t at) {
    FuncRec* fn = current_fn();
    if (fn == nullptr) return;
    const Token& t = toks_[at];
    const bool called_like =
        at + 1 < toks_.size() && is_punct(toks_[at + 1], "(");

    static const std::set<std::string> kClockIdents = {
        "system_clock", "gettimeofday", "clock_gettime", "localtime",
        "localtime_r",  "gmtime",       "gmtime_r",      "timespec_get"};
    static const std::set<std::string> kRandIdents = {"srand",
                                                      "random_device"};
    if (kClockIdents.count(t.text)) {
      fn->taints.push_back({"clock", t.text, t.line});
      return;
    }
    if (kRandIdents.count(t.text)) {
      fn->taints.push_back({"rand", t.text, t.line});
      return;
    }
    if (called_like && t.text == "rand") {
      fn->taints.push_back({"rand", "rand()", t.line});
      return;
    }
    if (called_like && t.text == "time" && at + 2 < toks_.size()) {
      const Token& arg = toks_[at + 2];
      if (is_ident(arg, "nullptr") || is_ident(arg, "NULL") ||
          (arg.kind == TokKind::kNumber && arg.text == "0")) {
        fn->taints.push_back({"clock", "time(nullptr)", t.line});
        return;
      }
    }
    if (called_like && !call_keywords().count(t.text)) {
      fn->calls.push_back({t.text, t.line});
    }
  }

  const std::string& file_;
  const std::vector<Token>& toks_;
  std::map<std::string, VarKind> file_decls_;
  std::vector<std::map<std::string, VarKind>> scopes_;
  std::vector<std::pair<std::size_t, int>> fn_stack_;  // (fn index, depth)
  int depth_ = 0;
  FileAnalysis out_;
};

// ---------------------------------------------------------------------------
// Cross-file clock/rand reachability.
// ---------------------------------------------------------------------------

/// Files whose direct clock/rand reads are design-sanctioned and must not
/// seed taint: instrumentation, the log timestamp, and the seeded RNG.
bool taint_exempt_file(std::string_view relpath) {
  return path_starts_with(relpath, "src/obs/") ||
         path_starts_with(relpath, "src/util/log.") ||
         path_starts_with(relpath, "src/util/rng.");
}

/// Taint may originate and propagate anywhere in src/ (wrappers live in
/// util); call sites are only *reported* in the reproducible subsystems.
bool taint_source_file(std::string_view relpath) {
  return path_starts_with(relpath, "src/") && !taint_exempt_file(relpath);
}

bool reproducible_file(std::string_view relpath) {
  return path_starts_with(relpath, "src/core/") ||
         path_starts_with(relpath, "src/rl/") ||
         path_starts_with(relpath, "src/env/") ||
         path_starts_with(relpath, "src/tiersim/") ||
         path_starts_with(relpath, "src/queueing/");
}

struct TaintWitness {
  std::string kind;   // "clock" or "rand"
  std::string chain;  // "wrapper (file:line) -> ... -> system_clock"
};

std::vector<Finding> reachability_findings(
    const std::map<std::string, FileAnalysis>& by_file) {
  // Seed: functions in eligible files whose bodies read clocks/rand.
  std::map<std::string, TaintWitness> tainted;
  for (const auto& [file, analysis] : by_file) {
    if (!taint_source_file(file)) continue;
    for (const auto& fn : analysis.functions) {
      if (fn.taints.empty() || tainted.count(fn.name)) continue;
      const TaintSite& site = fn.taints.front();
      tainted.emplace(fn.name,
                      TaintWitness{site.kind,
                                   fn.name + " (" + file + ":" +
                                       std::to_string(site.line) + ") -> " +
                                       site.what});
    }
  }

  // Fixpoint: a function calling a tainted name becomes tainted.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [file, analysis] : by_file) {
      if (!taint_source_file(file)) continue;
      for (const auto& fn : analysis.functions) {
        if (tainted.count(fn.name)) continue;
        for (const auto& call : fn.calls) {
          const auto it = tainted.find(call.callee);
          if (it == tainted.end()) continue;
          tainted.emplace(fn.name,
                          TaintWitness{it->second.kind,
                                       fn.name + " (" + file + ":" +
                                           std::to_string(fn.line) +
                                           ") -> " + it->second.chain});
          changed = true;
          break;
        }
      }
    }
  }

  std::vector<Finding> findings;
  for (const auto& [file, analysis] : by_file) {
    if (!reproducible_file(file)) continue;
    for (const auto& fn : analysis.functions) {
      for (const auto& call : fn.calls) {
        const auto it = tainted.find(call.callee);
        if (it == tainted.end()) continue;
        const bool clock = it->second.kind == "clock";
        findings.push_back(
            {file, call.line,
             clock ? "clock-reachability" : "rand-reachability",
             "call to '" + call.callee + "' reaches " +
                 (clock ? "a wall-clock read" : "ambient randomness") +
                 " through " + it->second.chain +
                 (clock ? "; reproducible subsystems must take time from "
                          "the simulation clock or the caller"
                        : "; derive randomness from the seeded util::Rng "
                          "instead")});
      }
    }
  }
  return findings;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> info = {
      {"include-cycle", "quoted-include cycle among project files"},
      {"layer-unknown", "src/ module not declared in layers.manifest"},
      {"layer-order", "module includes a module from a higher layer"},
      {"layer-edge", "module include edge not declared in layers.manifest"},
      {"layer-cycle", "cycle in the observed module dependency graph"},
      {"unordered-iter",
       "order-dependent work in a range-for over an unordered container"},
      {"clock-reachability",
       "wall-clock read reachable through helpers in a reproducible "
       "subsystem"},
      {"rand-reachability",
       "ambient randomness reachable through helpers in a reproducible "
       "subsystem"},
      {"parallel-ref-capture",
       "parallel lambda writes by-ref state not indexed by the task index"},
      {"unused-suppression",
       "allow() comment that suppresses no findings; remove it"},
  };
  return info;
}

std::vector<Finding> analyze_sources(const std::vector<SourceFile>& files,
                                     const Manifest* manifest) {
  std::vector<const SourceFile*> ordered;
  ordered.reserve(files.size());
  for (const auto& f : files) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->relpath < b->relpath;
            });

  std::map<std::string, srcscan::ScanResult> scans;
  IncludeGraph graph;
  for (const SourceFile* f : ordered) {
    auto scanned = srcscan::scan(f->contents);
    graph.add_file(f->relpath, scanned.tokens);
    scans.emplace(f->relpath, std::move(scanned));
  }
  graph.resolve();

  std::vector<Finding> findings = graph.find_cycles();
  if (manifest != nullptr) {
    auto layer_findings = graph.check_layers(*manifest);
    findings.insert(findings.end(), layer_findings.begin(),
                    layer_findings.end());
  }

  std::map<std::string, FileAnalysis> by_file;
  for (const SourceFile* f : ordered) {
    FileAnalyzer analyzer(f->relpath, scans.at(f->relpath).tokens);
    auto analysis = analyzer.run();
    findings.insert(findings.end(), analysis.findings.begin(),
                    analysis.findings.end());
    by_file.emplace(f->relpath, std::move(analysis));
  }

  auto reach = reachability_findings(by_file);
  findings.insert(findings.end(), reach.begin(), reach.end());

  // Same-line suppressions, then the unused-suppression sweep.
  std::map<std::string, srcscan::SuppressionSet> suppressions;
  for (const auto& [file, scanned] : scans) {
    suppressions.emplace(
        file, srcscan::SuppressionSet(scanned.lines, "rac-analyze:"));
  }
  std::vector<Finding> kept;
  for (auto& finding : findings) {
    auto it = suppressions.find(finding.file);
    if (it != suppressions.end() &&
        it->second.allowed(finding.line, finding.rule)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  for (auto& [file, supp] : suppressions) {
    for (const auto& [line, id] : supp.unused()) {
      kept.push_back(Finding{file, line, "unused-suppression",
                             "suppression allow(" + id +
                                 ") matched no finding on this line; "
                                 "remove it"});
    }
  }

  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return kept;
}

std::vector<SourceFile> load_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& subdirs) {
  std::vector<SourceFile> out;
  const auto load = [&](const std::filesystem::path& path,
                        const std::string& relpath) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("rac-analyze: cannot open " + path.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out.push_back(SourceFile{relpath, buffer.str()});
  };
  for (const auto& subdir : subdirs) {
    const std::filesystem::path dir = root / subdir;
    if (std::filesystem::is_regular_file(dir)) {
      load(dir, subdir);
      continue;
    }
    if (!std::filesystem::is_directory(dir)) {
      throw std::runtime_error("rac-analyze: no such directory: " +
                               dir.string());
    }
    std::vector<std::filesystem::path> paths;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      load(path, std::filesystem::relative(path, root).generic_string());
    }
  }
  return out;
}

std::map<std::string, std::set<std::string>> observed_module_deps(
    const std::vector<SourceFile>& files) {
  IncludeGraph graph;
  for (const auto& f : files) {
    graph.add_file(f.relpath, srcscan::scan(f.contents).tokens);
  }
  graph.resolve();
  return graph.module_deps();
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "{\"count\": " + std::to_string(findings.size()) +
                    ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"file\": \"";
    append_json_escaped(out, findings[i].file);
    out += "\", \"line\": " + std::to_string(findings[i].line) +
           ", \"rule\": \"";
    append_json_escaped(out, findings[i].rule);
    out += "\", \"message\": \"";
    append_json_escaped(out, findings[i].message);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out =
      "{\"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\", "
      "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
      "{\"name\": \"rac-analyze\", \"informationUri\": "
      "\"tools/analyze\", \"rules\": [";
  const auto& table = rules();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"id\": \"";
    append_json_escaped(out, table[i].id);
    out += "\", \"shortDescription\": {\"text\": \"";
    append_json_escaped(out, table[i].summary);
    out += "\"}}";
  }
  out += "]}}, \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"ruleId\": \"";
    append_json_escaped(out, findings[i].rule);
    out += "\", \"level\": \"error\", \"message\": {\"text\": \"";
    append_json_escaped(out, findings[i].message);
    out +=
        "\"}, \"locations\": [{\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"";
    append_json_escaped(out, findings[i].file);
    out += "\"}, \"region\": {\"startLine\": " +
           std::to_string(findings[i].line) + "}}}]}";
  }
  out += "]}]}";
  return out;
}

std::string to_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

}  // namespace rac::analyze
